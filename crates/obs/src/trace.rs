//! The structured trace and its emitters (phase table, JSON, chrome trace).

use std::collections::BTreeMap;

use crate::hist::HistogramSummary;
use crate::io::{io_kind_name, io_marker_name, io_op_name, IoEventRec, IoMarkerRec};
use crate::Phase;

/// One completed span: a phase interval on the main thread (`worker: None`)
/// or on a worker, optionally attributed to a work-queue task index.
///
/// Timestamps are monotonic nanoseconds since the recorder's epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRec {
    /// Which engine phase the span belongs to.
    pub phase: Phase,
    /// Worker id, or `None` for the coordinating (main) thread.
    pub worker: Option<usize>,
    /// Task index for work-queue items, `None` for whole-phase spans.
    pub task: Option<usize>,
    /// Start offset from the recorder epoch, nanoseconds.
    pub start_ns: u64,
    /// End offset from the recorder epoch, nanoseconds.
    pub end_ns: u64,
}

impl SpanRec {
    /// Span duration in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Structured result of one recorded run: spans, counters, histogram
/// summaries and gauges, drained from a recorder via `Obs::take_trace`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExecutionTrace {
    /// All recorded spans, sorted by start time.
    pub spans: Vec<SpanRec>,
    /// Named monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Named value-distribution summaries (skew histograms).
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Named high-water-mark gauges.
    pub gauges: BTreeMap<String, u64>,
    /// Device-level I/O events captured through `Obs::attach_io` on a
    /// `TracedDevice`, in global sequence order. Empty when no traced device
    /// was attached.
    pub io_events: Vec<IoEventRec>,
    /// Device counter snapshots/resets interleaved with [`Self::io_events`]
    /// (compare sequence numbers to place them in the stream).
    pub io_markers: Vec<IoMarkerRec>,
}

impl ExecutionTrace {
    /// Total wall seconds spent in `phase` on the coordinating thread.
    ///
    /// Worker spans are excluded: the main-thread phase span already covers
    /// the interval its workers ran in, so summing both would double-count.
    pub fn phase_secs(&self, phase: Phase) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.phase == phase && s.worker.is_none())
            .map(|s| s.dur_ns() as f64 * 1e-9)
            .sum()
    }

    /// Per-phase `(phase, span count, wall seconds)` for every phase that
    /// appears on the coordinating thread, in canonical phase order.
    pub fn phase_breakdown(&self) -> Vec<(Phase, usize, f64)> {
        Phase::ALL
            .iter()
            .filter_map(|&phase| {
                let calls = self
                    .spans
                    .iter()
                    .filter(|s| s.phase == phase && s.worker.is_none())
                    .count();
                (calls > 0).then(|| (phase, calls, self.phase_secs(phase)))
            })
            .collect()
    }

    /// Per-worker `(worker, task-span count, busy seconds)` aggregated over
    /// all worker spans, ascending by worker id.
    pub fn worker_breakdown(&self) -> Vec<(usize, usize, f64)> {
        let mut by_worker: BTreeMap<usize, (usize, f64)> = BTreeMap::new();
        for s in &self.spans {
            if let Some(w) = s.worker {
                let e = by_worker.entry(w).or_insert((0, 0.0));
                e.0 += usize::from(s.task.is_some());
                e.1 += s.dur_ns() as f64 * 1e-9;
            }
        }
        by_worker
            .into_iter()
            .map(|(w, (tasks, busy))| (w, tasks, busy))
            .collect()
    }

    /// Human-readable summary: per-phase wall times, skew histograms
    /// (p50/p99/max), counters, gauges and per-worker busy time.
    pub fn phase_table(&self) -> String {
        let mut out = String::new();
        out.push_str("phase            calls   wall_ms\n");
        for (phase, calls, secs) in self.phase_breakdown() {
            out.push_str(&format!(
                "{:<16} {:>5} {:>9.3}\n",
                phase.name(),
                calls,
                secs * 1e3
            ));
        }
        if !self.histograms.is_empty() {
            out.push_str(
                "histogram                    count       p50       p99       max      skew\n",
            );
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "{:<26} {:>7} {:>9} {:>9} {:>9} {:>9.2}\n",
                    name,
                    h.count,
                    h.p50,
                    h.p99,
                    h.max,
                    h.skew()
                ));
            }
        }
        for (name, v) in &self.counters {
            out.push_str(&format!("counter {name} = {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("gauge {name} = {v}\n"));
        }
        let workers = self.worker_breakdown();
        if !workers.is_empty() {
            out.push_str("worker   tasks   busy_ms\n");
            for (w, tasks, busy) in workers {
                out.push_str(&format!("{:<6} {:>7} {:>9.3}\n", w, tasks, busy * 1e3));
            }
        }
        out
    }

    /// Machine-readable JSON: spans, counters, histogram summaries, gauges.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"phase\": {}, \"worker\": {}, \"task\": {}, \"start_ns\": {}, \"end_ns\": {}}}",
                json_str(s.phase.name()),
                json_opt(s.worker),
                json_opt(s.task),
                s.start_ns,
                s.end_ns
            ));
        }
        out.push_str("\n  ],\n  \"counters\": {");
        push_map(
            &mut out,
            self.counters.iter().map(|(k, v)| (k, v.to_string())),
        );
        out.push_str("},\n  \"histograms\": {");
        push_map(
            &mut out,
            self.histograms.iter().map(|(k, h)| {
                (
                    k,
                    format!(
                        "{{\"count\": {}, \"min\": {}, \"p50\": {}, \"p99\": {}, \"max\": {}, \"sum\": {}}}",
                        h.count, h.min, h.p50, h.p99, h.max, h.sum
                    ),
                )
            }),
        );
        out.push_str("},\n  \"gauges\": {");
        push_map(
            &mut out,
            self.gauges.iter().map(|(k, v)| (k, v.to_string())),
        );
        out.push_str("},\n  \"io_events\": [");
        for (i, e) in self.io_events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"seq\": {}, \"t_ns\": {}, \"worker\": {}, \"phase\": {}, \"file\": {}, \"page\": {}, \"kind\": {}, \"op\": {}, \"latency_ns\": {}}}",
                e.seq,
                e.t_ns,
                json_opt(e.worker),
                e.phase.map_or_else(|| "null".to_string(), |p| json_str(p.name())),
                e.file.0,
                e.page,
                json_str(io_kind_name(e.kind)),
                json_str(io_op_name(e.op)),
                e.latency_ns.map_or_else(|| "null".to_string(), |l| l.to_string()),
            ));
        }
        out.push_str("\n  ],\n  \"io_markers\": [");
        for (i, m) in self.io_markers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"seq\": {}, \"t_ns\": {}, \"kind\": {}, \"seq_reads\": {}, \"rand_reads\": {}, \"seq_writes\": {}, \"rand_writes\": {}}}",
                m.seq,
                m.t_ns,
                json_str(io_marker_name(m.kind)),
                m.stats.seq_reads,
                m.stats.rand_reads,
                m.stats.seq_writes,
                m.stats.rand_writes,
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Chrome trace-event JSON (`chrome://tracing` / Perfetto).
    ///
    /// Every span becomes a complete (`"ph": "X"`) event; timestamps are
    /// microseconds since the recorder epoch. Thread ids give the per-worker
    /// timelines: tid 0 is the coordinating thread, tid `w + 1` is worker
    /// `w`. Task indices ride along in `args.task`.
    ///
    /// Traced device I/O gets its own lane per issuing thread: tid 1000 for
    /// the coordinating thread, tid `1000 + w + 1` for worker `w`. Each page
    /// access is a complete event named after its declared `IoKind`, with
    /// the enclosing phase as the category and `file`/`page` in the args;
    /// its duration is the measured latency when available, else a nominal
    /// 100 ns tick so the access is visible on the timeline.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\": [\n");
        let mut tids: Vec<Option<usize>> = self.spans.iter().map(|s| s.worker).collect();
        tids.sort_unstable();
        tids.dedup();
        let mut first = true;
        for w in &tids {
            let (tid, name) = match w {
                None => (0, "main".to_string()),
                Some(w) => (w + 1, format!("worker {w}")),
            };
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \"args\": {{\"name\": {}}}}}",
                json_str(&name)
            ));
        }
        let mut io_tids: Vec<Option<usize>> = self.io_events.iter().map(|e| e.worker).collect();
        io_tids.sort_unstable();
        io_tids.dedup();
        for w in &io_tids {
            let (tid, name) = match w {
                None => (1000, "io main".to_string()),
                Some(w) => (1000 + w + 1, format!("io worker {w}")),
            };
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \"args\": {{\"name\": {}}}}}",
                json_str(&name)
            ));
        }
        for s in &self.spans {
            let tid = s.worker.map_or(0, |w| w + 1);
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let args = match s.task {
                Some(t) => format!(", \"args\": {{\"task\": {t}}}"),
                None => String::new(),
            };
            out.push_str(&format!(
                "{{\"name\": {}, \"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"ts\": {:.3}, \"dur\": {:.3}{}}}",
                json_str(s.phase.name()),
                tid,
                s.start_ns as f64 / 1e3,
                s.dur_ns() as f64 / 1e3,
                args
            ));
        }
        for e in &self.io_events {
            let tid = e.worker.map_or(1000, |w| 1000 + w + 1);
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\": {}, \"cat\": {}, \"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"ts\": {:.3}, \"dur\": {:.3}, \"args\": {{\"file\": {}, \"page\": {}, \"op\": {}}}}}",
                json_str(io_kind_name(e.kind)),
                json_str(e.phase.map_or("unattributed", |p| p.name())),
                tid,
                e.t_ns as f64 / 1e3,
                e.latency_ns.unwrap_or(100) as f64 / 1e3,
                e.file.0,
                e.page,
                json_str(io_op_name(e.op)),
            ));
        }
        out.push_str("\n]}\n");
        out
    }
}

pub(crate) fn json_opt(v: Option<usize>) -> String {
    v.map_or_else(|| "null".to_string(), |v| v.to_string())
}

/// JSON string literal with the escapes that can occur in metric names.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn push_map<'a, I>(out: &mut String, entries: I)
where
    I: Iterator<Item = (&'a String, String)>,
{
    let mut first = true;
    for (k, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n    {}: {}", json_str(k), v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;

    fn sample_trace() -> ExecutionTrace {
        let obs = Obs::recording();
        {
            let _p = obs.span(Phase::Partition);
            let mut w = obs.worker(0);
            let t = w.start();
            w.record_task(Phase::Probe, 3, t);
        }
        obs.count("spilled_partitions", 4);
        obs.values("partition_records", [10u64, 20, 30, 1000]);
        obs.gauge_max("buffer_pool_peak_pages", 96);
        obs.take_trace().unwrap()
    }

    #[test]
    fn phase_breakdown_excludes_worker_spans() {
        let trace = sample_trace();
        let phases: Vec<Phase> = trace.phase_breakdown().iter().map(|r| r.0).collect();
        assert_eq!(phases, vec![Phase::Partition]);
        assert_eq!(trace.worker_breakdown().len(), 1);
        assert_eq!(trace.worker_breakdown()[0].1, 1, "one task span");
    }

    #[test]
    fn phase_table_mentions_everything() {
        let table = sample_trace().phase_table();
        for needle in [
            "partition",
            "partition_records",
            "spilled_partitions",
            "buffer_pool_peak_pages",
            "worker",
        ] {
            assert!(table.contains(needle), "missing {needle:?} in:\n{table}");
        }
    }

    #[test]
    fn json_emitter_schema() {
        let json = sample_trace().to_json();
        validate_json(&json);
        for key in ["\"spans\"", "\"counters\"", "\"histograms\"", "\"gauges\""] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert!(json.contains("\"phase\": \"partition\""));
        assert!(json.contains("\"worker\": null"));
        assert!(json.contains("\"worker\": 0"));
        assert!(json.contains("\"p99\": 1000"));
    }

    #[test]
    fn chrome_trace_schema() {
        let chrome = sample_trace().to_chrome_trace();
        validate_json(&chrome);
        assert!(chrome.contains("\"traceEvents\""));
        assert!(chrome.contains("\"ph\": \"X\""));
        assert!(chrome.contains("\"tid\": 1"), "worker 0 timeline is tid 1");
        assert!(chrome.contains("\"thread_name\""));
        assert!(chrome.contains("\"args\": {\"task\": 3}"));
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn empty_trace_emits_valid_json() {
        let trace = ExecutionTrace::default();
        validate_json(&trace.to_json());
        validate_json(&trace.to_chrome_trace());
        assert_eq!(trace.phase_secs(Phase::Total), 0.0);
    }

    /// Minimal JSON syntax checker: validates the emitters produce
    /// well-formed documents without pulling in a parser dependency.
    fn validate_json(s: &str) {
        let bytes = s.as_bytes();
        let mut pos = 0usize;
        skip_ws(bytes, &mut pos);
        parse_value(bytes, &mut pos);
        skip_ws(bytes, &mut pos);
        assert_eq!(pos, bytes.len(), "trailing garbage at byte {pos} in JSON");
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\n' | b'\t' | b'\r') {
            *pos += 1;
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) {
        skip_ws(b, pos);
        assert!(*pos < b.len(), "unexpected end of JSON");
        match b[*pos] {
            b'{' => parse_delimited(b, pos, b'}', true),
            b'[' => parse_delimited(b, pos, b']', false),
            b'"' => parse_string(b, pos),
            b't' => parse_lit(b, pos, "true"),
            b'f' => parse_lit(b, pos, "false"),
            b'n' => parse_lit(b, pos, "null"),
            _ => parse_number(b, pos),
        }
    }

    fn parse_delimited(b: &[u8], pos: &mut usize, close: u8, keyed: bool) {
        *pos += 1; // opening bracket
        skip_ws(b, pos);
        if b[*pos] == close {
            *pos += 1;
            return;
        }
        loop {
            if keyed {
                skip_ws(b, pos);
                parse_string(b, pos);
                skip_ws(b, pos);
                assert_eq!(b[*pos], b':', "expected ':' at byte {pos}");
                *pos += 1;
            }
            parse_value(b, pos);
            skip_ws(b, pos);
            match b[*pos] {
                b',' => *pos += 1,
                c if c == close => {
                    *pos += 1;
                    return;
                }
                c => panic!("unexpected byte {:?} at {pos}", c as char),
            }
        }
    }

    fn parse_string(b: &[u8], pos: &mut usize) {
        assert_eq!(b[*pos], b'"', "expected string at byte {pos}");
        *pos += 1;
        while b[*pos] != b'"' {
            if b[*pos] == b'\\' {
                *pos += 1;
            }
            *pos += 1;
        }
        *pos += 1;
    }

    fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) {
        assert!(
            b[*pos..].starts_with(lit.as_bytes()),
            "bad literal at {pos}"
        );
        *pos += lit.len();
    }

    fn parse_number(b: &[u8], pos: &mut usize) {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        assert!(*pos > start, "expected number at byte {start}");
    }
}
