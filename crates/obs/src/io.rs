//! Device-level I/O event capture: records, worker/phase attribution and
//! the [`IoEventSink`] implementation installed by `Obs::attach_io`.
//!
//! `nocap-storage`'s `TracedDevice` reports every successful page access to
//! an attached sink. This module provides the standard sink: it stamps each
//! event with a global sequence number, a monotonic timestamp on the shared
//! recorder epoch, and the *current worker and phase* of the calling thread,
//! then buffers it in a per-worker shard so the hot path never contends.
//!
//! ## Attribution
//!
//! Worker and phase are thread-local marks maintained by the recording
//! layer itself: [`Obs::worker`](crate::Obs::worker) marks the calling
//! thread with the worker id for the lifetime of the `WorkerObs` handle, and
//! phase spans ([`Obs::span`](crate::Obs::span) on the coordinating thread,
//! [`Obs::io_phase`](crate::Obs::io_phase) inside worker closures) mark the
//! enclosing phase. Marks are save/restore guards, so nested spans attribute
//! to the innermost phase and everything unwinds correctly when a scope
//! ends. None of this reads a clock or branches on shared state, and the
//! marks are only consulted when a sink is attached — recording stays
//! zero-cost-when-off and cannot perturb the run.
//!
//! ## Ordering
//!
//! The sequence counter is a single atomic, so all events and markers have a
//! total order. The executors only snapshot device counters at quiescent
//! phase barriers (after worker joins), which gives the happens-before edge
//! that makes a marker's sequence number greater than every event that the
//! counters have absorbed — the invariant the model audit relies on.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use nocap_storage::device::FileId;
use nocap_storage::{IoEventSink, IoKind, IoMarkerKind, IoOp, IoStats};

use crate::Phase;

/// One traced page access, stamped with attribution and ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoEventRec {
    /// Position in the global event/marker order.
    pub seq: u64,
    /// Monotonic nanoseconds since the recorder epoch.
    pub t_ns: u64,
    /// Worker id of the issuing thread, `None` for the coordinating thread.
    pub worker: Option<usize>,
    /// Innermost phase span enclosing the access, if any.
    pub phase: Option<Phase>,
    /// File the page belongs to.
    pub file: FileId,
    /// Page index within the file (for appends: the newly written page).
    pub page: usize,
    /// The [`IoKind`] the engine declared for this access.
    pub kind: IoKind,
    /// Whether the access was a read or an append.
    pub op: IoOp,
    /// Measured wall time of the device call, when the traced device was
    /// built with latency measurement (`TracedDevice::with_latency`).
    pub latency_ns: Option<u64>,
}

/// A traced counter snapshot or reset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoMarkerRec {
    /// Position in the global event/marker order.
    pub seq: u64,
    /// Monotonic nanoseconds since the recorder epoch.
    pub t_ns: u64,
    /// Snapshot or reset.
    pub kind: IoMarkerKind,
    /// Device counters at the marker (for resets: the pre-reset values).
    pub stats: IoStats,
}

/// Stable snake_case name of an [`IoKind`] for tables and JSON.
pub fn io_kind_name(kind: IoKind) -> &'static str {
    match kind {
        IoKind::SeqRead => "seq_read",
        IoKind::RandRead => "rand_read",
        IoKind::SeqWrite => "seq_write",
        IoKind::RandWrite => "rand_write",
    }
}

/// Stable name of an [`IoOp`].
pub fn io_op_name(op: IoOp) -> &'static str {
    match op {
        IoOp::Read => "read",
        IoOp::Append => "append",
    }
}

/// Stable name of an [`IoMarkerKind`].
pub fn io_marker_name(kind: IoMarkerKind) -> &'static str {
    match kind {
        IoMarkerKind::Snapshot => "snapshot",
        IoMarkerKind::Reset => "reset",
    }
}

// ---------------------------------------------------------------------------
// Thread-local attribution marks
// ---------------------------------------------------------------------------

thread_local! {
    static WORKER_MARK: Cell<Option<usize>> = const { Cell::new(None) };
    static PHASE_MARK: Cell<Option<Phase>> = const { Cell::new(None) };
}

pub(crate) fn current_marks() -> (Option<usize>, Option<Phase>) {
    (WORKER_MARK.get(), PHASE_MARK.get())
}

/// RAII guard restoring the previous worker mark of this thread on drop.
#[derive(Debug)]
pub struct IoWorkerMark {
    prev: Option<usize>,
    active: bool,
}

pub(crate) fn mark_worker(worker: usize) -> IoWorkerMark {
    IoWorkerMark {
        prev: WORKER_MARK.replace(Some(worker)),
        active: true,
    }
}

impl Drop for IoWorkerMark {
    fn drop(&mut self) {
        if self.active {
            WORKER_MARK.set(self.prev);
        }
    }
}

/// RAII guard restoring the previous phase mark of this thread on drop.
///
/// Returned by [`Obs::io_phase`](crate::Obs::io_phase); also installed
/// implicitly by every recording phase span. An inactive guard (recording
/// off) touches nothing.
#[derive(Debug)]
pub struct IoPhaseMark {
    prev: Option<Phase>,
    active: bool,
}

impl IoPhaseMark {
    pub(crate) fn inactive() -> Self {
        IoPhaseMark {
            prev: None,
            active: false,
        }
    }
}

pub(crate) fn mark_phase(phase: Phase) -> IoPhaseMark {
    IoPhaseMark {
        prev: PHASE_MARK.replace(Some(phase)),
        active: true,
    }
}

impl Drop for IoPhaseMark {
    fn drop(&mut self) {
        if self.active {
            PHASE_MARK.set(self.prev);
        }
    }
}

// ---------------------------------------------------------------------------
// The sink
// ---------------------------------------------------------------------------

/// Number of event buffers: shard 0 is the coordinating thread, workers map
/// onto the rest. One worker per shard in practice (the engine's thread
/// counts are far below this), so each buffer has a single writer and the
/// mutex acquisition is always uncontended — the same cost profile as the
/// lock-free per-worker span buffers `WorkerObs` uses.
const EVENT_SHARDS: usize = 65;

/// Shared state behind every sink an `Obs` installs. Lives on the `Obs`
/// handle so nested `attach_io` calls reuse one buffer set and one sequence
/// counter, and `take_trace` can drain it regardless of guard scope.
#[derive(Debug)]
pub(crate) struct IoSinkState {
    epoch: Instant,
    seq: AtomicU64,
    pub(crate) depth: AtomicUsize,
    shards: Vec<Mutex<Vec<IoEventRec>>>,
    markers: Mutex<Vec<IoMarkerRec>>,
}

impl IoSinkState {
    pub(crate) fn new(epoch: Instant) -> Self {
        IoSinkState {
            epoch,
            seq: AtomicU64::new(0),
            depth: AtomicUsize::new(0),
            shards: (0..EVENT_SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            markers: Mutex::new(Vec::new()),
        }
    }

    /// Drains all buffered events and markers, each sorted by sequence.
    pub(crate) fn drain(&self) -> (Vec<IoEventRec>, Vec<IoMarkerRec>) {
        let mut events: Vec<IoEventRec> = Vec::new();
        for shard in &self.shards {
            events.append(&mut shard.lock().expect("io shard lock"));
        }
        events.sort_unstable_by_key(|e| e.seq);
        let mut markers = std::mem::take(&mut *self.markers.lock().expect("io marker lock"));
        markers.sort_unstable_by_key(|m| m.seq);
        (events, markers)
    }
}

/// The [`IoEventSink`] `Obs::attach_io` installs on a traced device.
#[derive(Debug)]
pub(crate) struct ObsIoSink {
    pub(crate) state: Arc<IoSinkState>,
}

impl IoEventSink for ObsIoSink {
    fn io_event(&self, file: FileId, page: usize, kind: IoKind, op: IoOp, latency_ns: Option<u64>) {
        let (worker, phase) = current_marks();
        let rec = IoEventRec {
            seq: self.state.seq.fetch_add(1, Ordering::Relaxed),
            t_ns: self.state.epoch.elapsed().as_nanos() as u64,
            worker,
            phase,
            file,
            page,
            kind,
            op,
            latency_ns,
        };
        let shard = worker.map_or(0, |w| 1 + w % (EVENT_SHARDS - 1));
        self.state.shards[shard]
            .lock()
            .expect("io shard lock")
            .push(rec);
    }

    fn io_marker(&self, kind: IoMarkerKind, stats: IoStats) {
        let rec = IoMarkerRec {
            seq: self.state.seq.fetch_add(1, Ordering::Relaxed),
            t_ns: self.state.epoch.elapsed().as_nanos() as u64,
            kind,
            stats,
        };
        self.state.markers.lock().expect("io marker lock").push(rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_nest_and_restore() {
        assert_eq!(current_marks(), (None, None));
        {
            let _w = mark_worker(3);
            let _p = mark_phase(Phase::Partition);
            assert_eq!(current_marks(), (Some(3), Some(Phase::Partition)));
            {
                let _inner = mark_phase(Phase::Spill);
                assert_eq!(current_marks(), (Some(3), Some(Phase::Spill)));
            }
            assert_eq!(current_marks(), (Some(3), Some(Phase::Partition)));
        }
        assert_eq!(current_marks(), (None, None));
    }

    #[test]
    fn sink_orders_events_and_markers_by_seq() {
        let state = Arc::new(IoSinkState::new(Instant::now()));
        let sink = ObsIoSink {
            state: state.clone(),
        };
        sink.io_event(FileId(1), 0, IoKind::SeqRead, IoOp::Read, None);
        sink.io_marker(IoMarkerKind::Snapshot, IoStats::new());
        {
            let _w = mark_worker(1);
            sink.io_event(FileId(1), 1, IoKind::SeqRead, IoOp::Read, Some(42));
        }
        let (events, markers) = state.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[0].worker, None);
        assert_eq!(events[1].seq, 2);
        assert_eq!(events[1].worker, Some(1));
        assert_eq!(events[1].latency_ns, Some(42));
        assert_eq!(markers.len(), 1);
        assert_eq!(markers[0].seq, 1);
        // Drained once: a second drain is empty.
        assert_eq!(state.drain().0.len(), 0);
    }
}
