//! The Count-Min sketch (Cormode & Muthukrishnan).
//!
//! A `depth × width` grid of counters; each of the `depth` rows hashes the
//! key with an independent hash-family member and increments one cell. A
//! point query returns the minimum cell over the rows, which is always an
//! **overestimate** of the true frequency; with width `w = ⌈e/ε⌉` and depth
//! `d = ⌈ln(1/δ)⌉` the overestimate exceeds the truth by more than `ε·N`
//! with probability at most `δ`.
//!
//! In the stats pipeline the Count-Min sketch answers frequency point
//! queries for keys the SpaceSaving summary does *not* monitor (the long
//! tail), and cross-checks the summary's estimates.

use crate::mix_with_seed;

/// A Count-Min sketch over `u64` keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountMinSketch {
    /// Cells, row-major: `cells[row * width + col]`.
    cells: Vec<u64>,
    width: usize,
    depth: usize,
    total: u64,
}

impl CountMinSketch {
    /// Creates a sketch with the given geometry. `width` is rounded up to a
    /// power of two (for mask-based indexing); both dimensions have a floor
    /// of 1.
    pub fn new(width: usize, depth: usize) -> Self {
        let width = width.max(1).next_power_of_two();
        let depth = depth.max(1);
        CountMinSketch {
            cells: vec![0; width * depth],
            width,
            depth,
            total: 0,
        }
    }

    /// Creates a sketch sized for the standard `(ε, δ)` guarantee:
    /// overestimation beyond `ε·N` with probability at most `δ`.
    pub fn with_error(epsilon: f64, delta: f64) -> Self {
        let epsilon = epsilon.clamp(1e-9, 1.0);
        let delta = delta.clamp(1e-12, 0.5);
        let width = (std::f64::consts::E / epsilon).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil().max(1.0) as usize;
        CountMinSketch::new(width, depth)
    }

    /// Number of columns (a power of two).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Total stream weight observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observes one occurrence of `key`.
    pub fn add(&mut self, key: u64) {
        self.add_weighted(key, 1);
    }

    /// Observes `weight` occurrences of `key`.
    pub fn add_weighted(&mut self, key: u64, weight: u64) {
        self.total += weight;
        let mask = (self.width - 1) as u64;
        for row in 0..self.depth {
            let col = (mix_with_seed(key, row as u64 + 1) & mask) as usize;
            self.cells[row * self.width + col] += weight;
        }
    }

    /// Point query: an upper bound on the frequency of `key` (the min over
    /// rows). Never underestimates.
    pub fn estimate(&self, key: u64) -> u64 {
        let mask = (self.width - 1) as u64;
        let mut best = u64::MAX;
        for row in 0..self.depth {
            let col = (mix_with_seed(key, row as u64 + 1) & mask) as usize;
            best = best.min(self.cells[row * self.width + col]);
        }
        if best == u64::MAX {
            0
        } else {
            best
        }
    }

    /// Merges `other` into `self` by cell-wise addition. Merge is exact (and
    /// therefore associative and commutative): the merged sketch equals the
    /// sketch of the concatenated streams.
    ///
    /// # Panics
    /// If the two sketches have different geometry — they would not share a
    /// hash family.
    pub fn merge(&mut self, other: &CountMinSketch) {
        assert_eq!(
            (self.width, self.depth),
            (other.width, other.depth),
            "can only merge Count-Min sketches with identical geometry"
        );
        for (a, b) in self.cells.iter_mut().zip(other.cells.iter()) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Approximate resident size in bytes (the cell grid dominates).
    pub fn memory_bytes(&self) -> usize {
        self.cells.len() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn stream() -> Vec<u64> {
        // Key i appears (1000 / (i+1)) times, i in 0..100.
        let mut s = Vec::new();
        for i in 0..100u64 {
            for _ in 0..(1_000 / (i + 1)) {
                s.push(i);
            }
        }
        s
    }

    #[test]
    fn never_underestimates() {
        let s = stream();
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut cm = CountMinSketch::new(256, 4);
        for &k in &s {
            cm.add(k);
            *truth.entry(k).or_insert(0) += 1;
        }
        for (&k, &t) in &truth {
            assert!(cm.estimate(k) >= t, "CM underestimated key {k}");
        }
        // Unseen keys may collide but the estimate is still an upper bound
        // of their true count, 0 — trivially satisfied. Sanity: most unseen
        // keys in a sparse sketch stay small.
        assert_eq!(cm.total(), s.len() as u64);
    }

    #[test]
    fn epsilon_bound_holds_on_average() {
        let s = stream();
        let mut cm = CountMinSketch::with_error(0.01, 0.01);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &k in &s {
            cm.add(k);
            *truth.entry(k).or_insert(0) += 1;
        }
        let n = s.len() as u64;
        let eps_n = (0.01 * n as f64).ceil() as u64;
        let violations = truth
            .iter()
            .filter(|(&k, &t)| cm.estimate(k) > t + eps_n)
            .count();
        assert!(
            violations <= truth.len() / 20,
            "too many ε·N violations: {violations}"
        );
    }

    #[test]
    fn width_rounds_to_power_of_two() {
        let cm = CountMinSketch::new(100, 3);
        assert_eq!(cm.width(), 128);
        assert_eq!(cm.depth(), 3);
        assert_eq!(cm.memory_bytes(), 128 * 3 * 8);
    }

    #[test]
    fn merge_equals_concatenated_stream() {
        let s = stream();
        let (left, right) = s.split_at(s.len() / 2);
        let mut a = CountMinSketch::new(128, 4);
        let mut b = CountMinSketch::new(128, 4);
        let mut whole = CountMinSketch::new(128, 4);
        for &k in left {
            a.add(k);
        }
        for &k in right {
            b.add(k);
        }
        for &k in &s {
            whole.add(k);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn merge_is_associative() {
        let s = stream();
        let third = s.len() / 3;
        let parts = [&s[..third], &s[third..2 * third], &s[2 * third..]];
        let sketch = |keys: &[u64]| {
            let mut cm = CountMinSketch::new(64, 3);
            for &k in keys {
                cm.add(k);
            }
            cm
        };
        let (s0, s1, s2) = (sketch(parts[0]), sketch(parts[1]), sketch(parts[2]));
        // (s0 ⊕ s1) ⊕ s2
        let mut left = s0.clone();
        left.merge(&s1);
        left.merge(&s2);
        // s0 ⊕ (s1 ⊕ s2)
        let mut right_inner = s1.clone();
        right_inner.merge(&s2);
        let mut right = s0.clone();
        right.merge(&right_inner);
        assert_eq!(left, right);
    }

    #[test]
    #[should_panic(expected = "identical geometry")]
    fn merging_mismatched_geometry_panics() {
        let mut a = CountMinSketch::new(64, 3);
        let b = CountMinSketch::new(128, 3);
        a.merge(&b);
    }
}
