//! # nocap-joins
//!
//! The baseline storage-based join algorithms the paper compares NOCAP
//! against (§2, §5):
//!
//! * [`naive`] — an in-memory nested-loop reference join used only as a test
//!   oracle.
//! * [`nbj`] — Nested Block Join: stream the inner relation through memory
//!   in chunks, scanning the outer relation once per chunk.
//! * [`ghj`] — Grace Hash Join: uniformly hash-partition both relations,
//!   recursing when a partition still does not fit, then join partition
//!   pairs (falling back to chunk-wise NBJ exactly like the paper's "GHJ
//!   augmented to fall back to NBJ").
//! * [`smj`] — Sort-Merge Join on the external sorter, fusing the final
//!   merge pass with the join.
//! * [`dhh`] — Dynamic Hybrid Hash join (Algorithms 1 and 2): partitions are
//!   staged in memory and destaged on demand (POB bits), with the
//!   PostgreSQL-style skew optimization controlled by two fixed thresholds
//!   (2 % of memory for the skew hash table, triggered when the MCV mass
//!   exceeds 2 % of S).
//! * [`histojoin`] — Histojoin: the MCV-caching skew optimization with a
//!   zero trigger threshold, as configured in the paper's evaluation.
//!
//! Every executor takes a [`JoinSpec`](nocap_model::JoinSpec), draws its
//! memory from a [`BufferPool`](nocap_storage::BufferPool) capped at the
//! spec's budget and returns a [`JoinRunReport`](nocap_model::JoinRunReport)
//! with the measured I/O trace.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dhh;
pub mod ghj;
pub mod histojoin;
pub mod naive;
pub mod nbj;
pub mod smj;

pub mod testutil;

pub use dhh::{DhhConfig, DhhJoin};
pub use ghj::GraceHashJoin;
pub use histojoin::HistoJoin;
pub use naive::naive_join_count;
pub use nbj::NestedBlockJoin;
pub use smj::{merge_join_runs, SortMergeJoin, SMJ_MIN_BUDGET_PAGES};
