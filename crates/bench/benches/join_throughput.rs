//! CPU throughput of the record pipeline: zero-copy vs the pre-refactor
//! allocation-heavy path, for the in-memory build+probe kernel, the
//! one-pass partition sweep, external-sort run generation and the fused SMJ
//! merge-join.
//!
//! On `SimDevice` the modeled I/O is free, so these numbers isolate the CPU
//! cost per record — the quantity the zero-copy refactors target. The same
//! kernels power `exp_cpu_throughput`, which records absolute records/sec
//! in `BENCH_cpu.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nocap_bench::cpu;
use nocap_joins::merge_join_runs;
use nocap_storage::{Relation, SimDevice};

const N_R: usize = 20_000;
const N_S: usize = 80_000;
const RECORD_BYTES: usize = 128;
const PARTITIONS: usize = 64;
const SORT_BUDGET: usize = 64;

fn inputs() -> (Relation, Relation) {
    let device = SimDevice::new_ref();
    cpu::build_input(device, N_R, N_S, RECORD_BYTES, 4096).expect("workload")
}

fn bench_build_probe(c: &mut Criterion) {
    let (r, s) = inputs();
    let mut group = c.benchmark_group("build_probe");
    group.sample_size(10);
    group.bench_function("zero_copy", |b| {
        b.iter(|| cpu::build_probe_zero_copy(black_box(&r), black_box(&s)).unwrap())
    });
    group.bench_function("legacy", |b| {
        b.iter(|| cpu::build_probe_legacy(black_box(&r), black_box(&s)).unwrap())
    });
    group.finish();
}

fn bench_partition_sweep(c: &mut Criterion) {
    let (_, s) = inputs();
    let mut group = c.benchmark_group("partition_sweep");
    group.sample_size(10);
    group.bench_function("zero_copy", |b| {
        b.iter(|| cpu::partition_sweep_zero_copy(black_box(&s), PARTITIONS).unwrap())
    });
    group.bench_function("legacy", |b| {
        b.iter(|| cpu::partition_sweep_legacy(black_box(&s), PARTITIONS).unwrap())
    });
    group.finish();
}

fn bench_sort_run_gen(c: &mut Criterion) {
    let (_, s) = inputs();
    let mut group = c.benchmark_group("sort_run_gen");
    group.sample_size(10);
    group.bench_function("zero_copy", |b| {
        b.iter(|| cpu::sort_runs_zero_copy(black_box(&s), SORT_BUDGET).unwrap())
    });
    group.bench_function("legacy", |b| {
        b.iter(|| cpu::sort_runs_legacy(black_box(&s), SORT_BUDGET).unwrap())
    });
    group.finish();
}

fn bench_smj_merge(c: &mut Criterion) {
    let (r, s) = inputs();
    // Run preparation happens once; merging reads runs without consuming
    // them, so both variants iterate over the same sorted-run sets.
    let r_runs = cpu::sorted_runs_for_merge(&r, SORT_BUDGET, 12).expect("R runs");
    let s_runs = cpu::sorted_runs_for_merge(&s, SORT_BUDGET, 51).expect("S runs");
    let mut group = c.benchmark_group("smj_merge");
    group.sample_size(10);
    group.bench_function("zero_copy", |b| {
        b.iter(|| merge_join_runs(black_box(&r_runs), black_box(&s_runs)).unwrap())
    });
    group.bench_function("legacy", |b| {
        b.iter(|| cpu::merge_join_legacy(black_box(&r_runs), black_box(&s_runs)).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_build_probe,
    bench_partition_sweep,
    bench_sort_run_gen,
    bench_smj_merge
);
criterion_main!(benches);
