//! External sort: run generation plus multiway merge.
//!
//! The sort-merge join baseline (SMJ, §2.1 of the paper) externally sorts
//! both relations by the join key and merges them. Its cost is
//! `(1 + #s-passes · (1 + τ)) · (‖R‖ + ‖S‖)`: one initial read, and for every
//! additional sort pass a sequential write (weighted by τ) plus a read of
//! every page. Following the paper, the final merge pass is fused with the
//! join whenever the number of runs fits the merge fan-in, so
//! [`ExternalSorter::sort_to_runs`] stops as soon as `#runs ≤ fan-in` and
//! hands the runs to a [`MergeIterator`] that the join drives directly.
//!
//! Run files are written sequentially ([`IoKind::SeqWrite`]); merge reads
//! interleave across runs and are counted as random reads
//! ([`IoKind::RandRead`]), matching the paper's observation that SMJ's reads
//! are ≈1.2× slower than GHJ's sequential reads.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::device::DeviceRef;
use crate::iostats::IoKind;
use crate::record::Record;
use crate::relation::Relation;
use crate::spill::{PartitionHandle, PartitionReader, PartitionWriter};
use crate::Result;

/// External sorter with a fixed page budget.
pub struct ExternalSorter {
    device: DeviceRef,
    /// Page budget available for run generation and merging (the paper's B).
    budget_pages: usize,
    /// Statistics: how many full sort passes were performed (the paper's
    /// `#s-passes`, excluding the fused final merge).
    passes: usize,
}

/// Outcome of [`ExternalSorter::sort_to_runs`]: the runs plus bookkeeping.
pub struct SortedRuns {
    /// Sorted run files, each internally ordered by key.
    pub runs: Vec<PartitionHandle>,
    /// Number of intermediate merge passes that were necessary before the
    /// run count fit the merge fan-in (0 when run generation was enough).
    pub merge_passes: usize,
}

impl ExternalSorter {
    /// Creates a sorter that may use `budget_pages` pages of memory.
    ///
    /// At least 3 pages are required (one input page plus a two-way merge).
    pub fn new(device: DeviceRef, budget_pages: usize) -> Self {
        assert!(budget_pages >= 3, "external sort needs at least 3 pages");
        ExternalSorter {
            device,
            budget_pages,
            passes: 0,
        }
    }

    /// Number of full passes over the data performed so far (run generation
    /// counts as one pass; each intermediate merge adds another).
    pub fn passes(&self) -> usize {
        self.passes
    }

    /// Sorts `relation` into runs, merging intermediate runs until at most
    /// `max_final_runs` remain, and returns them.
    ///
    /// `max_final_runs` is typically `B − 1` for a single-relation sort or a
    /// smaller share when two relations are sorted for the same merge join.
    pub fn sort_to_runs(
        &mut self,
        relation: &Relation,
        max_final_runs: usize,
    ) -> Result<SortedRuns> {
        assert!(max_final_runs >= 2, "need at least a two-way final merge");
        let mut runs = self.generate_runs(relation)?;
        self.passes += 1;

        let mut merge_passes = 0;
        while runs.len() > max_final_runs {
            runs = self.merge_pass(runs)?;
            merge_passes += 1;
            self.passes += 1;
        }
        Ok(SortedRuns { runs, merge_passes })
    }

    /// Fully sorts a relation and returns a single run containing all records
    /// in key order (convenience for tests and examples).
    pub fn sort_fully(&mut self, relation: &Relation) -> Result<PartitionHandle> {
        let SortedRuns { mut runs, .. } = self.sort_to_runs(relation, 2)?;
        while runs.len() > 1 {
            runs = self.merge_pass(runs)?;
            self.passes += 1;
        }
        Ok(runs.pop().expect("at least one run"))
    }

    /// Phase 1: read the relation in memory-sized chunks, sort each chunk and
    /// write it out as a run.
    fn generate_runs(&mut self, relation: &Relation) -> Result<Vec<PartitionHandle>> {
        let per_page = relation.records_per_page();
        // One page is reserved for streaming the input; the rest buffers the
        // records being sorted.
        let chunk_records = per_page * (self.budget_pages - 1).max(1);
        let mut runs = Vec::new();
        let mut buffer: Vec<Record> = Vec::with_capacity(chunk_records);
        for rec in relation.scan() {
            buffer.push(rec?);
            if buffer.len() == chunk_records {
                runs.push(self.write_run(relation, &mut buffer)?);
            }
        }
        if !buffer.is_empty() {
            runs.push(self.write_run(relation, &mut buffer)?);
        }
        Ok(runs)
    }

    fn write_run(&self, relation: &Relation, buffer: &mut Vec<Record>) -> Result<PartitionHandle> {
        buffer.sort_by_key(Record::key);
        let mut writer = PartitionWriter::new(
            self.device.clone(),
            relation.layout(),
            relation.page_size(),
            IoKind::SeqWrite,
        );
        for rec in buffer.drain(..) {
            writer.push(&rec)?;
        }
        writer.finish()
    }

    /// Phase 2: one merge pass combining groups of up to `B − 1` runs into
    /// longer runs.
    fn merge_pass(&mut self, runs: Vec<PartitionHandle>) -> Result<Vec<PartitionHandle>> {
        let fan_in = (self.budget_pages - 1).max(2);
        let mut next_level = Vec::new();
        let mut group = Vec::new();
        let mut layout = None;
        let mut page_size = None;

        // Figure out layout/page size from the first non-empty run by peeking
        // one record; all runs of one sort share the same geometry.
        for run in &runs {
            if run.records() > 0 {
                let first = run
                    .read(IoKind::SeqRead)
                    .next()
                    .transpose()?
                    .expect("non-empty run yields a record");
                layout = Some(first.layout());
                page_size = Some(run_page_size(run));
                break;
            }
        }
        let layout = match layout {
            Some(l) => l,
            // All runs empty: nothing to merge.
            None => return Ok(runs),
        };
        let page_size = page_size.expect("page size set together with layout");

        for run in runs {
            group.push(run);
            if group.len() == fan_in {
                next_level.push(self.merge_group(std::mem::take(&mut group), layout, page_size)?);
            }
        }
        if group.len() == 1 {
            next_level.push(group.pop().expect("single leftover run"));
        } else if !group.is_empty() {
            next_level.push(self.merge_group(group, layout, page_size)?);
        }
        Ok(next_level)
    }

    fn merge_group(
        &self,
        runs: Vec<PartitionHandle>,
        layout: crate::record::RecordLayout,
        page_size: usize,
    ) -> Result<PartitionHandle> {
        let mut writer =
            PartitionWriter::new(self.device.clone(), layout, page_size, IoKind::SeqWrite);
        let mut merger = MergeIterator::new(&runs)?;
        while let Some(rec) = merger.next().transpose()? {
            writer.push(&rec)?;
        }
        let merged = writer.finish()?;
        for run in runs {
            run.delete()?;
        }
        Ok(merged)
    }
}

/// The page size a run was written with (its reader produces pages of that
/// size; the handle itself does not store it, so recover it from the device
/// read). Runs are always written by [`PartitionWriter`] with the relation's
/// page size, so reading page 0 is exact; to avoid the extra I/O for the
/// common case we simply reuse the default page size when the run is empty.
fn run_page_size(_run: &PartitionHandle) -> usize {
    crate::page::DEFAULT_PAGE_SIZE
}

/// K-way merge over sorted runs, yielding records in ascending key order.
///
/// Reads interleave across runs and are counted as random reads.
pub struct MergeIterator {
    readers: Vec<std::iter::Peekable<PartitionReader>>,
    heap: BinaryHeap<Reverse<(u64, usize)>>,
}

impl MergeIterator {
    /// Builds a merge iterator over `runs` (each must be internally sorted).
    pub fn new(runs: &[PartitionHandle]) -> Result<Self> {
        let mut readers: Vec<_> = runs
            .iter()
            .map(|r| r.read(IoKind::RandRead).peekable())
            .collect();
        let mut heap = BinaryHeap::new();
        for (idx, reader) in readers.iter_mut().enumerate() {
            if let Some(first) = reader.peek() {
                match first {
                    Ok(rec) => heap.push(Reverse((rec.key(), idx))),
                    Err(_) => {
                        // Force the error to surface on first `next()`.
                        heap.push(Reverse((0, idx)));
                    }
                }
            }
        }
        Ok(MergeIterator { readers, heap })
    }

    /// Peeks at the key of the next record without consuming it.
    pub fn peek_key(&mut self) -> Option<u64> {
        self.heap.peek().map(|Reverse((k, _))| *k)
    }
}

impl Iterator for MergeIterator {
    type Item = Result<Record>;

    fn next(&mut self) -> Option<Self::Item> {
        let Reverse((_, idx)) = self.heap.pop()?;
        let rec = match self.readers[idx].next() {
            Some(Ok(rec)) => rec,
            Some(Err(e)) => return Some(Err(e)),
            None => return self.next(),
        };
        if let Some(peeked) = self.readers[idx].peek() {
            match peeked {
                Ok(next_rec) => self.heap.push(Reverse((next_rec.key(), idx))),
                Err(_) => self.heap.push(Reverse((0, idx))),
            }
        }
        Some(Ok(rec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::SimDevice;
    use crate::record::RecordLayout;

    fn build_relation(dev: DeviceRef, keys: &[u64]) -> Relation {
        Relation::bulk_load(
            dev,
            RecordLayout::new(8),
            crate::page::DEFAULT_PAGE_SIZE,
            keys.iter().map(|&k| Record::with_fill(k, 8, 0)),
        )
        .unwrap()
    }

    fn shuffled(n: u64) -> Vec<u64> {
        // Deterministic pseudo-shuffle (multiplicative hash ordering).
        let mut keys: Vec<u64> = (0..n).collect();
        keys.sort_by_key(|&k| k.wrapping_mul(0x9E3779B97F4A7C15));
        keys
    }

    #[test]
    fn sort_fully_orders_all_records() {
        let dev = SimDevice::new_ref();
        let rel = build_relation(dev.clone(), &shuffled(5_000));
        let mut sorter = ExternalSorter::new(dev, 4);
        let sorted = sorter.sort_fully(&rel).unwrap();
        let keys: Vec<u64> = sorted
            .read(IoKind::SeqRead)
            .map(|r| r.unwrap().key())
            .collect();
        assert_eq!(keys.len(), 5_000);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn sort_to_runs_respects_fan_in() {
        let dev = SimDevice::new_ref();
        let rel = build_relation(dev.clone(), &shuffled(20_000));
        let mut sorter = ExternalSorter::new(dev, 5);
        let out = sorter.sort_to_runs(&rel, 4).unwrap();
        assert!(out.runs.len() <= 4);
        let total: usize = out.runs.iter().map(|r| r.records()).sum();
        assert_eq!(total, 20_000);
        for run in &out.runs {
            let keys: Vec<u64> = run
                .read(IoKind::SeqRead)
                .map(|r| r.unwrap().key())
                .collect();
            assert!(keys.windows(2).all(|w| w[0] <= w[1]), "run must be sorted");
        }
    }

    #[test]
    fn single_chunk_needs_one_run_and_no_merge() {
        let dev = SimDevice::new_ref();
        let rel = build_relation(dev.clone(), &shuffled(100));
        let mut sorter = ExternalSorter::new(dev, 64);
        let out = sorter.sort_to_runs(&rel, 63).unwrap();
        assert_eq!(out.runs.len(), 1);
        assert_eq!(out.merge_passes, 0);
    }

    #[test]
    fn merge_iterator_merges_across_runs() {
        let dev = SimDevice::new_ref();
        let rel = build_relation(dev.clone(), &shuffled(3_000));
        let mut sorter = ExternalSorter::new(dev, 3);
        let out = sorter.sort_to_runs(&rel, 8).unwrap();
        assert!(out.runs.len() > 1, "small budget must produce several runs");
        let merged: Vec<u64> = MergeIterator::new(&out.runs)
            .unwrap()
            .map(|r| r.unwrap().key())
            .collect();
        assert_eq!(merged.len(), 3_000);
        assert!(merged.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn run_writes_are_sequential_and_merge_reads_random() {
        let dev = SimDevice::new_ref();
        let rel = build_relation(dev.clone(), &shuffled(2_000));
        dev.reset_stats();
        let mut sorter = ExternalSorter::new(dev.clone(), 3);
        let out = sorter.sort_to_runs(&rel, 16).unwrap();
        let after_runs = dev.stats();
        assert!(
            after_runs.seq_writes > 0,
            "run generation writes sequentially"
        );
        assert_eq!(after_runs.rand_writes, 0);
        let _ = MergeIterator::new(&out.runs)
            .unwrap()
            .collect::<Result<Vec<_>>>()
            .unwrap();
        let after_merge = dev.stats().since(&after_runs);
        assert!(after_merge.rand_reads > 0, "merging reads runs randomly");
        assert_eq!(after_merge.seq_reads, 0);
    }

    #[test]
    fn empty_relation_sorts_to_empty_runs() {
        let dev = SimDevice::new_ref();
        let rel = Relation::bulk_load(
            dev.clone(),
            RecordLayout::new(8),
            crate::page::DEFAULT_PAGE_SIZE,
            std::iter::empty(),
        )
        .unwrap();
        let mut sorter = ExternalSorter::new(dev, 4);
        let out = sorter.sort_to_runs(&rel, 4).unwrap();
        let total: usize = out.runs.iter().map(|r| r.records()).sum();
        assert_eq!(total, 0);
    }
}
