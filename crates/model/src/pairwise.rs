//! Partition-wise join execution shared by every partitioning algorithm.
//!
//! After the partitioning phase, GHJ, DHH, Histojoin and NOCAP all face the
//! same sub-problem: join one spilled R partition with the corresponding S
//! partition. Following the paper (§3.1.1), the partition-wise join is
//! executed as a Nested Block Join — the light optimizer of Table 1 almost
//! always selects NBJ for these sub-joins because writing anything back to
//! disk (as GHJ/SMJ would) costs μ/τ-weighted I/Os.
//!
//! [`nbj_partition_join`] loads the R partition chunk-by-chunk into an
//! in-memory hash table sized to the full buffer budget and scans the S
//! partition once per chunk, which reproduces the
//! `⌈‖R_j‖·F/(B−2)⌉ · ‖S_j‖` term of the cost model exactly.
//!
//! The whole loop is zero-copy: pages are read once, records enter the
//! chunk table as [`RecordRef`] arena copies and S records probe straight
//! from their page buffer — no per-record allocation anywhere.

use std::sync::Arc;

use nocap_storage::{BloomFilter, IoKind, JoinHashTable, Page, PartitionHandle, RecordRef};

use crate::report::JoinRunReport;
use crate::sip::ProbeBloom;
use crate::spec::JoinSpec;

/// Joins one spilled partition pair with chunk-wise NBJ.
///
/// Returns the number of output tuples produced. Page reads are charged to
/// `report.probe_io` through the device the handles live on; the caller is
/// responsible for snapshotting device stats into the report.
pub fn nbj_partition_join(
    r_partition: &PartitionHandle,
    s_partition: &PartitionHandle,
    spec: &JoinSpec,
    on_output: impl FnMut(RecordRef<'_>, RecordRef<'_>),
) -> nocap_storage::Result<u64> {
    nbj_partition_join_filtered(
        r_partition,
        s_partition,
        spec,
        &ProbeBloom::off(),
        on_output,
    )
}

/// [`nbj_partition_join`] with a per-chunk Bloom pre-filter over the chunk's
/// keys: S records that cannot match the resident chunk skip the hash-table
/// probe entirely. Output and I/O are identical to the unfiltered join (the
/// filter has no false negatives and touches no pages); the caller charges
/// the filter's `bloom.pages` to its own buffer pool.
pub fn nbj_partition_join_filtered(
    r_partition: &PartitionHandle,
    s_partition: &PartitionHandle,
    spec: &JoinSpec,
    bloom: &ProbeBloom,
    mut on_output: impl FnMut(RecordRef<'_>, RecordRef<'_>),
) -> nocap_storage::Result<u64> {
    if r_partition.is_empty() || s_partition.is_empty() {
        return Ok(0);
    }
    // Chunk capacity: all pages except one input page and one output page,
    // deflated by the fudge factor.
    let chunk_records = JoinHashTable::capacity_for_pages(
        spec.buffer_pages.saturating_sub(2).max(1),
        spec.r_layout,
        spec.page_size,
        spec.fudge,
    )
    .max(1);

    let mut output = 0u64;
    let mut reader = r_partition.read(IoKind::SeqRead);
    let mut loader = ChunkLoader::new();
    loop {
        // Load the next chunk of R into a hash table.
        let mut table = JoinHashTable::new(spec.r_layout, spec.page_size, spec.fudge);
        let loaded = loader.fill(&mut table, chunk_records, || reader.next_page())?;
        if table.is_empty() {
            break;
        }
        // The chunk is complete: freeze it into the vectorized probe layout
        // and (optionally) summarize its keys for the pre-filter.
        table.seal();
        let chunk_bloom = (bloom.enabled && bloom.pages > 0).then(|| {
            BloomFilter::from_keys(
                table.iter().map(|rec| rec.key()),
                table.num_records(),
                bloom.pages,
                spec.page_size,
            )
        });
        // Scan S once for this chunk.
        let mut s_reader = s_partition.read(IoKind::SeqRead);
        while let Some(page) = s_reader.next_page()? {
            for s_rec in page.record_refs() {
                if let Some(bf) = &chunk_bloom {
                    if !bf.may_contain(s_rec.key()) {
                        continue;
                    }
                }
                for r_rec in table.probe(s_rec.key()) {
                    on_output(r_rec, s_rec);
                    output += 1;
                }
            }
        }
        if loaded < chunk_records {
            break;
        }
    }
    Ok(output)
}

/// Incrementally fills chunk hash tables from a page stream, resuming a
/// page whose records straddle a chunk boundary so every page is read
/// exactly once — the same I/O accounting the owned-record iterator
/// implementation produced. Shared by [`nbj_partition_join`] and the
/// standalone NBJ executor.
#[derive(Default)]
pub struct ChunkLoader {
    pending: Option<(Arc<Page>, usize)>,
}

impl ChunkLoader {
    /// Creates a loader with no pending page.
    pub fn new() -> Self {
        ChunkLoader::default()
    }

    /// Loads up to `chunk_records` records from `next_page` into `table`,
    /// returning how many were loaded (fewer than `chunk_records` iff the
    /// page stream is exhausted).
    pub fn fill(
        &mut self,
        table: &mut JoinHashTable,
        chunk_records: usize,
        mut next_page: impl FnMut() -> nocap_storage::Result<Option<Arc<Page>>>,
    ) -> nocap_storage::Result<usize> {
        let mut loaded = 0usize;
        while loaded < chunk_records {
            let (page, start) = match self.pending.take() {
                Some(resume) => resume,
                None => match next_page()? {
                    Some(page) => (page, 0),
                    None => break,
                },
            };
            let count = page.record_count();
            let take = (chunk_records - loaded).min(count - start);
            for i in start..start + take {
                table.insert_ref(page.get_ref(i)?);
            }
            loaded += take;
            if start + take < count {
                self.pending = Some((page, start + take));
            }
        }
        Ok(loaded)
    }
}

/// Convenience wrapper: joins a list of partition pairs, accumulating output
/// counts into `report.output_records`.
pub fn join_partition_pairs(
    pairs: &[(PartitionHandle, PartitionHandle)],
    spec: &JoinSpec,
    report: &mut JoinRunReport,
) -> nocap_storage::Result<()> {
    for (r_part, s_part) in pairs {
        report.output_records += nbj_partition_join(r_part, s_part, spec, |_, _| {})?;
    }
    Ok(())
}

/// SplitMix64 with a per-recursion-level salt so nested re-partitioning uses
/// an independent hash function from the one that produced the partition
/// (the shared workspace hash, pinned bit-for-bit in `nocap_storage::hash`).
fn level_hash(key: u64, level: u32) -> u64 {
    nocap_storage::hash::mix64_seeded(key, nocap_storage::hash::level_seed(level))
}

/// The paper's light optimizer applied to one spilled partition pair:
/// join with chunk-wise NBJ, or — when the estimated Table 1 cost says
/// another partitioning pass is cheaper (the regime below `√(F·‖R‖)`) —
/// re-partition the pair recursively first, exactly as GHJ/DHH downgrade to
/// Grace-style recursion.
pub fn smart_partition_join(
    r_partition: &PartitionHandle,
    s_partition: &PartitionHandle,
    spec: &JoinSpec,
    depth: u32,
) -> nocap_storage::Result<u64> {
    const MAX_DEPTH: u32 = 4;
    if r_partition.is_empty() || s_partition.is_empty() {
        return Ok(0);
    }
    let fits = JoinHashTable::pages_for(
        r_partition.records(),
        spec.r_layout,
        spec.page_size,
        spec.fudge,
    ) + 2
        <= spec.buffer_pages;
    if fits || depth >= MAX_DEPTH {
        return nbj_partition_join(r_partition, s_partition, spec, |_, _| {});
    }
    let nbj = crate::classic_cost::nbj_cost_best(r_partition.pages(), s_partition.pages(), spec);
    let ghj = crate::classic_cost::ghj_cost(r_partition.pages(), s_partition.pages(), spec);
    if nbj <= ghj {
        return nbj_partition_join(r_partition, s_partition, spec, |_, _| {});
    }
    // Re-partition both sides and recurse (zero-copy: records route straight
    // from the source page into the sub-partition output buffers).
    let device = r_partition.device().clone();
    let m = spec.buffer_pages.saturating_sub(1).max(2);
    let repartition = |handle: &PartitionHandle| -> nocap_storage::Result<Vec<PartitionHandle>> {
        let mut writers: Vec<Option<nocap_storage::PartitionWriter>> =
            (0..m).map(|_| None).collect();
        let mut layout = None;
        let mut reader = handle.read(IoKind::SeqRead);
        while let Some(page) = reader.next_page()? {
            let page_layout = page.record_layout();
            layout.get_or_insert(page_layout);
            for rec in page.record_refs() {
                let p = (level_hash(rec.key(), depth) % m as u64) as usize;
                let writer = writers[p].get_or_insert_with(|| {
                    nocap_storage::PartitionWriter::new(
                        device.clone(),
                        page_layout,
                        spec.page_size,
                        IoKind::RandWrite,
                    )
                });
                writer.push_ref(rec)?;
            }
        }
        let layout = layout.unwrap_or(spec.r_layout);
        // Fail-clean finish: a mid-loop error deletes the handles produced
        // so far (unfinished writers delete their own files on drop).
        let mut guard = nocap_storage::SpillGuard::new();
        let mut out = Vec::with_capacity(writers.len());
        for w in writers {
            let h = match w {
                Some(w) => w.finish()?,
                None => nocap_storage::PartitionWriter::new(
                    device.clone(),
                    layout,
                    spec.page_size,
                    IoKind::RandWrite,
                )
                .finish()?,
            };
            guard.adopt(h.clone());
            out.push(h);
        }
        let _ = guard.release();
        Ok(out)
    };
    // Fail-clean recursion: the sub-partitions are deleted when the guard
    // drops, whether the nested joins succeed or not.
    let mut guard = nocap_storage::SpillGuard::new();
    let r_sub = repartition(r_partition)?;
    guard.adopt_all(r_sub.iter().cloned());
    let s_sub = repartition(s_partition)?;
    guard.adopt_all(s_sub.iter().cloned());
    let mut output = 0u64;
    for (rp, sp) in r_sub.iter().zip(s_sub.iter()) {
        output += smart_partition_join(rp, sp, spec, depth + 1)?;
    }
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocap_storage::{PartitionWriter, Record, RecordLayout, SimDevice};

    fn make_partition(
        device: nocap_storage::device::DeviceRef,
        keys: &[u64],
        payload: usize,
    ) -> PartitionHandle {
        let mut w =
            PartitionWriter::new(device, RecordLayout::new(payload), 4096, IoKind::RandWrite);
        for &k in keys {
            w.push(&Record::with_fill(k, payload, 0)).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn joins_matching_keys() {
        let dev = SimDevice::new_ref();
        let spec = JoinSpec::paper_synthetic(64, 64);
        let r = make_partition(dev.clone(), &[1, 2, 3, 4], 56);
        let s = make_partition(dev.clone(), &[2, 2, 3, 9, 9], 56);
        let out = nbj_partition_join(&r, &s, &spec, |_, _| {}).unwrap();
        assert_eq!(out, 3); // key 2 twice + key 3 once
    }

    #[test]
    fn multiple_chunks_scan_s_repeatedly() {
        let dev = SimDevice::new_ref();
        // Tiny budget: 4 pages → chunk of ~2 pages of R.
        let spec = JoinSpec::paper_synthetic(512, 4);
        let r_keys: Vec<u64> = (0..200).collect();
        let s_keys: Vec<u64> = (0..200).collect();
        let r = make_partition(dev.clone(), &r_keys, 504);
        let s = make_partition(dev.clone(), &s_keys, 504);
        dev.reset_stats();
        let out = nbj_partition_join(&r, &s, &spec, |_, _| {}).unwrap();
        assert_eq!(out, 200);
        // S must have been read more than once.
        let s_pages = s.pages() as u64;
        assert!(dev.stats().seq_reads > r.pages() as u64 + s_pages);
    }

    #[test]
    fn empty_partitions_produce_no_output_and_no_io() {
        let dev = SimDevice::new_ref();
        let spec = JoinSpec::paper_synthetic(64, 16);
        let r = make_partition(dev.clone(), &[], 56);
        let s = make_partition(dev.clone(), &[1, 2], 56);
        dev.reset_stats();
        assert_eq!(nbj_partition_join(&r, &s, &spec, |_, _| {}).unwrap(), 0);
        assert_eq!(dev.stats().total(), 0);
    }

    #[test]
    fn smart_join_recursively_repartitions_when_cheaper() {
        // A partition pair far larger than the memory budget: chunk-wise NBJ
        // would need many passes over S, so the smart join should
        // re-partition and end up cheaper.
        let dev = SimDevice::new_ref();
        let spec = JoinSpec::paper_synthetic(64, 16);
        let keys: Vec<u64> = (0..20_000).collect();
        let r = make_partition(dev.clone(), &keys, 56);
        let s = make_partition(dev.clone(), &keys, 56);

        dev.reset_stats();
        let nbj_out = nbj_partition_join(&r, &s, &spec, |_, _| {}).unwrap();
        let nbj_ios = dev.stats().total();

        dev.reset_stats();
        let smart_out = smart_partition_join(&r, &s, &spec, 1).unwrap();
        let smart_ios = dev.stats().total();

        assert_eq!(nbj_out, 20_000);
        assert_eq!(smart_out, 20_000);
        assert!(
            smart_ios < nbj_ios,
            "recursive re-partitioning should beat multi-pass NBJ ({smart_ios} vs {nbj_ios})"
        );
    }

    #[test]
    fn bloom_filtered_join_matches_the_unfiltered_join_exactly() {
        let dev = SimDevice::new_ref();
        // Small budget forces several chunks, so per-chunk filters are
        // actually rebuilt and consulted.
        let spec = JoinSpec::paper_synthetic(512, 4);
        let r_keys: Vec<u64> = (0..300).collect();
        let s_keys: Vec<u64> = (0..600).map(|k| k * 2).collect(); // half miss
        let r = make_partition(dev.clone(), &r_keys, 504);
        let s = make_partition(dev.clone(), &s_keys, 504);

        dev.reset_stats();
        let plain = nbj_partition_join(&r, &s, &spec, |_, _| {}).unwrap();
        let plain_io = dev.stats().total();
        dev.reset_stats();
        let filtered =
            nbj_partition_join_filtered(&r, &s, &spec, &ProbeBloom::default(), |_, _| {}).unwrap();
        let filtered_io = dev.stats().total();
        assert_eq!(filtered, plain, "the pre-filter must not change output");
        assert_eq!(filtered_io, plain_io, "the pre-filter must not touch I/O");
        assert_eq!(plain, 150); // even keys 0,2,...,298 each match once
    }

    #[test]
    fn smart_join_equals_nbj_when_the_partition_fits() {
        let dev = SimDevice::new_ref();
        let spec = JoinSpec::paper_synthetic(64, 64);
        let r = make_partition(dev.clone(), &[1, 2, 3], 56);
        let s = make_partition(dev.clone(), &[1, 3, 3, 7], 56);
        assert_eq!(smart_partition_join(&r, &s, &spec, 1).unwrap(), 3);
    }

    #[test]
    fn join_partition_pairs_accumulates_output() {
        let dev = SimDevice::new_ref();
        let spec = JoinSpec::paper_synthetic(64, 32);
        let pairs = vec![
            (
                make_partition(dev.clone(), &[1, 2], 56),
                make_partition(dev.clone(), &[1, 1], 56),
            ),
            (
                make_partition(dev.clone(), &[5], 56),
                make_partition(dev.clone(), &[5, 5, 5], 56),
            ),
        ];
        let mut report = JoinRunReport::new("pairwise-test");
        join_partition_pairs(&pairs, &spec, &mut report).unwrap();
        assert_eq!(report.output_records, 5);
    }
}
