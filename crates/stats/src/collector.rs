//! One-pass statistics collection under a page budget.
//!
//! [`StatsCollector`] owns one of each sketch — SpaceSaving, Count-Min, KMV
//! and the fallback histogram — and feeds every observed join key to all
//! four. Its memory is sized from a **page budget** and, when constructed
//! through [`StatsCollector::with_budget`], reserved from the same
//! [`BufferPool`] the join draws from, so collecting statistics is charged
//! against the operator's memory like any other phase instead of being
//! assumed free (the oracle `CorrelationTable` path this subsystem
//! replaces).
//!
//! The produced [`StatsSummary`] is the planner-facing artifact: top-k
//! [`McvEstimate`]s with error bounds, the exact stream length, a distinct
//! count estimate and the retained sketches for point queries.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use nocap_model::McvEstimate;
use nocap_obs::{Obs, Phase};
use nocap_par::{default_threads, page_shards, run_workers};
use nocap_storage::{
    into_inner_unpoisoned, lock_unpoisoned, BufferPool, Record, Relation, RelationScan,
    Reservation, Result,
};

use crate::countmin::CountMinSketch;
use crate::distinct::KmvSketch;
use crate::histogram::EquiWidthHistogram;
use crate::spacesaving::SpaceSaving;

/// Sketch sizing for one collection pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsConfig {
    /// SpaceSaving counters (the top-k capacity; error ≤ N / counters).
    pub mcv_counters: usize,
    /// Count-Min width (rounded up to a power of two).
    pub cm_width: usize,
    /// Count-Min depth (number of hash rows).
    pub cm_depth: usize,
    /// KMV minimum-hash count (distinct-count error ≈ 1/√k).
    pub kmv_k: usize,
    /// Fallback histogram bucket count.
    pub hist_buckets: usize,
    /// Key domain `[lo, hi)` of the fallback histogram when it is known
    /// upfront (catalog knowledge); keys outside clamp to the edge buckets.
    /// `None` (the default) builds an *adaptive* histogram anchored at 0
    /// whose bucket width doubles to cover whatever key range the stream
    /// actually contains.
    pub key_domain: Option<(u64, u64)>,
}

impl Default for StatsConfig {
    fn default() -> Self {
        StatsConfig {
            mcv_counters: 1_024,
            cm_width: 2_048,
            cm_depth: 4,
            kmv_k: 256,
            hist_buckets: 64,
            key_domain: None,
        }
    }
}

impl StatsConfig {
    /// Sizes the sketches to fit `bytes` bytes, split 60 % SpaceSaving
    /// (the planner-critical sketch), 20 % Count-Min, 10 % KMV, 10 %
    /// histogram. Every component scales down with the budget (no fixed
    /// floors), so the result fits any `bytes ≥ 256`; below that the
    /// structural minimum of one-of-each-sketch applies.
    pub fn for_budget_bytes(bytes: usize) -> Self {
        let bytes = bytes.max(256);
        let mcv_counters = (bytes * 6 / 10 / 64).max(1);
        let cm_depth = if bytes >= 2_048 { 4 } else { 2 };
        // Round the width *down* to a power of two so the sketch never
        // exceeds its share of the budget (CountMinSketch rounds up).
        let cm_width = prev_power_of_two((bytes * 2 / 10 / 8 / cm_depth).max(1));
        let kmv_k = (bytes / 10 / 24).clamp(2, 4_096);
        let hist_buckets = (bytes / 10 / 8).clamp(1, 65_536);
        StatsConfig {
            mcv_counters,
            cm_width,
            cm_depth,
            kmv_k,
            hist_buckets,
            key_domain: None,
        }
    }

    /// Sizes the sketches to fit `pages` pages of `page_size` bytes.
    pub fn for_budget_pages(pages: usize, page_size: usize) -> Self {
        Self::for_budget_bytes(pages.max(1) * page_size.max(64))
    }

    /// Returns a copy with a fixed histogram key domain (instead of the
    /// default adaptive bucketing).
    pub fn with_key_domain(mut self, lo: u64, hi: u64) -> Self {
        self.key_domain = Some((lo, hi));
        self
    }

    /// Bytes the configured sketches occupy (the accounting the page budget
    /// is charged by).
    pub fn memory_bytes(&self) -> usize {
        self.mcv_counters * 64
            + self.cm_width.next_power_of_two() * self.cm_depth * 8
            + self.kmv_k * 24
            + self.hist_buckets * 8
    }

    /// Pages the configured sketches occupy, rounded up.
    pub fn memory_pages(&self, page_size: usize) -> usize {
        self.memory_bytes().div_ceil(page_size.max(64)).max(1)
    }
}

/// Largest power of two `≤ n` (`n ≥ 1`).
fn prev_power_of_two(n: usize) -> usize {
    1 << (usize::BITS - 1 - n.max(1).leading_zeros())
}

/// One-pass streaming statistics collector.
#[derive(Debug)]
pub struct StatsCollector {
    config: StatsConfig,
    spacesaving: SpaceSaving,
    countmin: CountMinSketch,
    kmv: KmvSketch,
    histogram: EquiWidthHistogram,
    n: u64,
    min_key: Option<u64>,
    max_key: Option<u64>,
    /// Holds the page budget against the join's buffer pool for the lifetime
    /// of the collection pass.
    reservation: Option<Reservation>,
}

impl StatsCollector {
    /// Creates a collector with explicit sketch sizing and no buffer-pool
    /// charge (for tests and offline analysis).
    pub fn new(config: StatsConfig) -> Self {
        let histogram = match config.key_domain {
            Some((lo, hi)) => EquiWidthHistogram::new(lo, hi, config.hist_buckets),
            None => EquiWidthHistogram::adaptive(0, config.hist_buckets),
        };
        StatsCollector {
            spacesaving: SpaceSaving::new(config.mcv_counters),
            countmin: CountMinSketch::new(config.cm_width, config.cm_depth),
            kmv: KmvSketch::new(config.kmv_k),
            histogram,
            n: 0,
            min_key: None,
            max_key: None,
            reservation: None,
            config,
        }
    }

    /// Creates a collector sized for `pages` pages, **reserving the
    /// sketches' footprint from `pool`** for the lifetime of the collection
    /// pass. Fails with
    /// [`StorageError::OutOfMemory`](nocap_storage::StorageError::OutOfMemory)
    /// if the pool cannot spare it — statistics collection must not
    /// silently exceed the operator's memory budget.
    pub fn with_budget(pool: &BufferPool, pages: usize, page_size: usize) -> Result<Self> {
        let config = StatsConfig::for_budget_pages(pages, page_size);
        // For every realistic geometry the footprint fits the request; only
        // degenerate page sizes (under ~256 bytes, where even one-of-each
        // sketch outgrows a page) need more, and then the *actual* footprint
        // is what gets reserved — never charged less than used.
        let reservation = pool.reserve(pages.max(config.memory_pages(page_size)))?;
        let mut collector = Self::new(config);
        collector.reservation = Some(reservation);
        Ok(collector)
    }

    /// Creates a **shard** collector: identical sketch sizing to
    /// [`StatsCollector::new`], but the fallback histogram uses the
    /// pinned-anchor adaptive mode
    /// ([`EquiWidthHistogram::adaptive_pinned`]) instead of first-key
    /// anchoring (unless the config fixes a `key_domain`, which is already
    /// order-insensitive). Shard collectors are the unit of sharded
    /// parallel collection: every sketch component they produce is an
    /// order-insensitive function of the observed key multiset *or* (for
    /// SpaceSaving beyond its exact regime) carries merge-preserved error
    /// bounds, so shard summaries can be folded with
    /// [`merge`](Self::merge) in canonical shard order to a deterministic
    /// [`StatsSummary`].
    pub fn new_shard(config: StatsConfig) -> Self {
        let mut collector = Self::new(config);
        if config.key_domain.is_none() {
            collector.histogram = EquiWidthHistogram::adaptive_pinned(0, config.hist_buckets);
        }
        collector
    }

    /// Merges another collector's sketches into this one, as if this
    /// collector had also observed every key `other` observed.
    ///
    /// Exactness per component: the stream length, min/max key, Count-Min
    /// counters, KMV distinct sketch and (pinned-anchor or fixed-domain)
    /// histogram merge **exactly** — the merged state equals a single
    /// collector's state over the concatenated stream, for any split and
    /// any merge order. The SpaceSaving summary merges with its error
    /// bounds preserved (Agarwal et al., "Mergeable Summaries"); it is
    /// exact while the distinct-key count stays within `mcv_counters`, and
    /// an overestimate with per-key error bounds beyond that.
    ///
    /// # Panics
    /// If the two collectors were built with different [`StatsConfig`]s, or
    /// one is a shard collector and the other is not (their histograms
    /// refuse to merge).
    pub fn merge(&mut self, other: &StatsCollector) {
        assert_eq!(
            self.config, other.config,
            "can only merge collectors with identical sketch configurations"
        );
        self.spacesaving.merge(&other.spacesaving);
        self.countmin.merge(&other.countmin);
        self.kmv.merge(&other.kmv);
        self.histogram.merge(&other.histogram);
        self.n += other.n;
        self.min_key = match (self.min_key, other.min_key) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max_key = match (self.max_key, other.max_key) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// The sketch sizing in effect.
    pub fn config(&self) -> &StatsConfig {
        &self.config
    }

    /// Keys observed so far.
    pub fn observed(&self) -> u64 {
        self.n
    }

    /// Observes one join key.
    pub fn observe(&mut self, key: u64) {
        self.n += 1;
        self.spacesaving.offer(key);
        self.countmin.add(key);
        self.kmv.insert(key);
        self.histogram.add(key);
        self.min_key = Some(self.min_key.map_or(key, |m| m.min(key)));
        self.max_key = Some(self.max_key.map_or(key, |m| m.max(key)));
    }

    /// Observes one record (its join key).
    pub fn observe_record(&mut self, record: &Record) {
        self.observe(record.key());
    }

    /// Consumes an entire relation scan in one pass. This is the intended
    /// entry point: page-granular sequential reads through the zero-copy
    /// page loop (no per-record allocation), every record's key offered to
    /// every sketch exactly once.
    pub fn consume(&mut self, mut scan: RelationScan) -> Result<()> {
        while let Some(page) = scan.next_page()? {
            for rec in page.record_refs() {
                self.observe(rec.key());
            }
        }
        Ok(())
    }

    /// Consumes a fallible key stream (the `stream_keys` hook of
    /// `nocap-workload` generators produces exactly this shape).
    ///
    /// A generator's stream and a page scan of the loaded relation present
    /// the same key **multiset**, possibly in different orders. On a
    /// [shard collector](Self::new_shard) in its exact regime the order
    /// cannot matter (every component is a function of the multiset), so
    /// `consume_keys` and [`consume`](Self::consume) agree; on a plain
    /// streaming collector the first-key histogram anchor and an
    /// overflowing SpaceSaving sketch are arrival-order sensitive — use
    /// shard collectors wherever two summaries must be comparable.
    pub fn consume_keys<I>(&mut self, keys: I) -> Result<()>
    where
        I: IntoIterator<Item = Result<u64>>,
    {
        for key in keys {
            self.observe(key?);
        }
        Ok(())
    }

    /// Finishes the pass: releases the buffer-pool reservation and returns
    /// the summary.
    pub fn finish(mut self) -> StatsSummary {
        drop(self.reservation.take());
        let mcvs = self.spacesaving.top_k(self.spacesaving.capacity());
        StatsSummary {
            n: self.n,
            mcvs,
            error_guarantee: self.spacesaving.error_guarantee(),
            unmonitored_ceiling: self.spacesaving.min_count(),
            distinct: self.kmv.estimate(),
            min_key: self.min_key,
            max_key: self.max_key,
            spacesaving: self.spacesaving,
            countmin: self.countmin,
            histogram: self.histogram,
        }
    }

    /// Number of statistics shards a relation is collected over:
    /// [`STATS_SHARDS`] contiguous page ranges, fewer only when the
    /// relation has fewer pages. A function of the relation alone — never
    /// of the worker count — which is what makes
    /// [`collect_parallel`](Self::collect_parallel) produce the same
    /// summary for every thread count.
    pub fn shard_count(rel: &Relation) -> usize {
        STATS_SHARDS.min(rel.num_pages()).max(1)
    }

    /// Sharded parallel statistics collection: scans `rel` with `threads`
    /// workers (0 selects [`nocap_par::default_threads`]) over the fixed
    /// shard grid of [`shard_count`](Self::shard_count) contiguous page
    /// ranges, one [shard collector](Self::new_shard) per shard, and folds
    /// the shard sketches in canonical shard order.
    ///
    /// **Determinism.** Each shard's sketch depends only on that shard's
    /// pages, and the fold order is fixed, so the summary is bit-identical
    /// for every thread count and every scheduling interleaving — the
    /// statistics analog of `run_parallel`'s I/O-trace guarantee. With one
    /// thread this *is* sequential collection (the workers run on the
    /// calling thread), so `collect_parallel(_, _, n) ==
    /// collect_parallel(_, _, 1)` for all `n` on every workload; it also
    /// equals a plain single-collector [`consume`](Self::consume) pass in
    /// every component except the SpaceSaving counters once the stream's
    /// distinct-key count exceeds `mcv_counters` (where single-pass
    /// SpaceSaving is itself arrival-order-dependent; the merged counters
    /// still carry their error bounds).
    ///
    /// The scan reads every page of `rel` exactly once, so the modeled I/O
    /// equals the sequential pass's `‖rel‖` sequential reads.
    pub fn collect_parallel(
        config: StatsConfig,
        rel: &Relation,
        threads: usize,
    ) -> Result<StatsSummary> {
        Self::collect_parallel_obs(config, rel, threads, &Obs::off())
    }

    /// [`collect_parallel`](Self::collect_parallel) with observability: the
    /// pass is bracketed by a `stats` phase span and every shard scan
    /// becomes a per-worker task span. Recording is passive — the shard
    /// grid, fold order and modeled I/O are untouched.
    pub fn collect_parallel_obs(
        config: StatsConfig,
        rel: &Relation,
        threads: usize,
        obs: &Obs,
    ) -> Result<StatsSummary> {
        Ok(Self::collect_sharded(rel, threads, obs, |_| Ok(Self::new_shard(config)))?.finish())
    }

    /// The budgeted variant of [`collect_parallel`](Self::collect_parallel):
    /// every shard collector reserves `pages` pages (or its real footprint,
    /// whichever is larger) from `pool` for the lifetime of the pass, so
    /// deterministic sharded collection is charged at its true resident
    /// cost — `shard_count × pages`, independent of the thread count,
    /// because the shard geometry (not the worker count) fixes how many
    /// sketch sets exist. All shard budgets are reserved **before the scan
    /// starts**: an oversubscribed pool fails with
    /// [`OutOfMemory`](nocap_storage::StorageError::OutOfMemory) up front,
    /// not after half the relation was already read.
    pub fn collect_parallel_with_budget(
        pool: &BufferPool,
        pages: usize,
        page_size: usize,
        rel: &Relation,
        threads: usize,
    ) -> Result<StatsSummary> {
        Self::collect_parallel_with_budget_obs(pool, pages, page_size, rel, threads, &Obs::off())
    }

    /// The observed variant of
    /// [`collect_parallel_with_budget`](Self::collect_parallel_with_budget);
    /// see [`collect_parallel_obs`](Self::collect_parallel_obs).
    pub fn collect_parallel_with_budget_obs(
        pool: &BufferPool,
        pages: usize,
        page_size: usize,
        rel: &Relation,
        threads: usize,
        obs: &Obs,
    ) -> Result<StatsSummary> {
        let config = StatsConfig::for_budget_pages(pages, page_size);
        let charge = pages.max(config.memory_pages(page_size));
        let reservations: Vec<Mutex<Option<Reservation>>> = (0..Self::shard_count(rel))
            .map(|_| pool.reserve(charge).map(|r| Mutex::new(Some(r))))
            .collect::<Result<_>>()?;
        let collected = Self::collect_sharded(rel, threads, obs, |shard| {
            let mut collector = Self::new_shard(config);
            collector.reservation = lock_unpoisoned(&reservations[shard]).take();
            Ok(collector)
        })?;
        Ok(collected.finish())
    }

    /// Scans the fixed shard grid with a worker pool and folds the shard
    /// collectors in shard order. Workers claim shards from an atomic
    /// cursor, so any `threads ≤ shards` keeps every worker busy; the fold
    /// happens after the barrier, in index order, making the result
    /// independent of which worker scanned which shard. `make` receives the
    /// shard index it is building a collector for.
    fn collect_sharded(
        rel: &Relation,
        threads: usize,
        obs: &Obs,
        make: impl Fn(usize) -> Result<StatsCollector> + Sync,
    ) -> Result<StatsCollector> {
        let threads = if threads == 0 {
            default_threads()
        } else {
            threads
        };
        let _stats_span = obs.span(Phase::Stats);
        let num_shards = Self::shard_count(rel);
        obs.count("stats_shards", num_shards as u64);
        let grid = page_shards(rel.num_pages(), num_shards);
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<StatsCollector>>> =
            (0..num_shards).map(|_| Mutex::new(None)).collect();
        run_workers(threads.max(1).min(num_shards), |w| {
            let mut wobs = obs.worker(w);
            // Attribute traced device reads from this worker to the stats phase.
            let _io = obs.io_phase(Phase::Stats);
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= num_shards {
                    return Ok(());
                }
                let started = wobs.start();
                let mut collector = make(i)?;
                collector.consume(rel.scan_range(grid[i].clone()))?;
                *lock_unpoisoned(&slots[i]) = Some(collector);
                wobs.record_task(Phase::Stats, i, started);
            }
        })?;
        let mut folded: Option<StatsCollector> = None;
        for slot in slots {
            let shard = into_inner_unpoisoned(slot).expect("every shard was collected");
            match folded.as_mut() {
                None => folded = Some(shard),
                Some(acc) => acc.merge(&shard),
            }
        }
        Ok(folded.expect("at least one shard"))
    }
}

/// Number of fixed statistics shards a relation's pages are split into for
/// sharded parallel collection (fewer when the relation is smaller; see
/// [`StatsCollector::shard_count`]). Fixed — like the residual partition
/// quotas of the parallel executors — because determinism requires the
/// decomposition to depend on the data, never on the worker count.
pub const STATS_SHARDS: usize = 8;

/// The planner-facing artifact of one collection pass.
///
/// Equality is *logical*: two summaries compare equal when every
/// planner-visible artifact matches — stream length, MCV list with error
/// bounds, distinct estimate, key range, Count-Min counters, histogram
/// buckets and the canonical SpaceSaving entries. Internal sketch layout
/// (heap order, counter slots) is ignored, so a summary folded from shard
/// sketches compares equal to a sequentially collected one whenever they
/// answer every query identically. The differential determinism suites
/// pin `collect_parallel`'s thread-count invariance with this.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSummary {
    n: u64,
    mcvs: Vec<McvEstimate>,
    error_guarantee: u64,
    unmonitored_ceiling: u64,
    distinct: f64,
    min_key: Option<u64>,
    max_key: Option<u64>,
    spacesaving: SpaceSaving,
    countmin: CountMinSketch,
    histogram: EquiWidthHistogram,
}

impl StatsSummary {
    /// Exact number of records observed (the stream length, `n_S` when the
    /// fact relation was scanned).
    pub fn stream_len(&self) -> u64 {
        self.n
    }

    /// The tracked most common values, most frequent first, with error
    /// bounds. At most `mcv_counters` entries.
    pub fn mcvs(&self) -> &[McvEstimate] {
        &self.mcvs
    }

    /// The `k` hottest MCVs as the `(key, count)` pairs the NOCAP planner
    /// consumes.
    pub fn mcv_pairs(&self, k: usize) -> Vec<(u64, u64)> {
        nocap_model::estimate::to_pairs(&self.mcvs[..k.min(self.mcvs.len())])
    }

    /// The SpaceSaving guarantee: no MCV count overestimates its true
    /// frequency by more than this (`N / counters`).
    pub fn error_guarantee(&self) -> u64 {
        self.error_guarantee
    }

    /// Upper bound on the frequency of any key *not* in the MCV list.
    pub fn unmonitored_ceiling(&self) -> u64 {
        self.unmonitored_ceiling
    }

    /// Estimated number of distinct keys (KMV).
    pub fn distinct_keys(&self) -> f64 {
        self.distinct
    }

    /// Smallest key observed, if any record was seen.
    pub fn min_key(&self) -> Option<u64> {
        self.min_key
    }

    /// Largest key observed, if any record was seen.
    pub fn max_key(&self) -> Option<u64> {
        self.max_key
    }

    /// MCVs with a frequency *provably* above the unmonitored ceiling: their
    /// guaranteed (lower-bound) count exceeds the largest frequency any
    /// untracked key could have, so they are heavy hitters no matter how the
    /// sketch erred.
    pub fn reliable_mcvs(&self) -> impl Iterator<Item = &McvEstimate> {
        self.mcvs
            .iter()
            .filter(|e| e.guaranteed_count() > self.unmonitored_ceiling)
    }

    /// The `(key, count)` statistics the planner should consume.
    ///
    /// On skewed streams this is simply every tracked MCV with its
    /// SpaceSaving count — the configuration the accuracy experiments
    /// validated. On **near-uniform** streams SpaceSaving degenerates:
    /// every counter's count is dominated by the `N / counters` error term,
    /// so the raw estimates overstate per-key frequency by an order of
    /// magnitude and can bait the planner into caching keys that save
    /// nothing. The near-uniform case is detected by counting
    /// [`reliable_mcvs`](Self::reliable_mcvs) (provable heavy hitters);
    /// when almost none exist, the tracked keys are kept — they are real
    /// keys of the stream — but their masses are replaced by the equi-width
    /// histogram's per-key estimate, which is unbiased under uniformity.
    /// This is the histogram-backed fallback the planner consumes instead
    /// of an empty (or noise-ridden) MCV list.
    pub fn planner_mcvs(&self) -> Vec<(u64, u64)> {
        /// Below this many provable heavy hitters the stream is treated as
        /// near-uniform.
        const MIN_RELIABLE: usize = 8;
        let reliable = self.reliable_mcvs().count();
        if reliable >= MIN_RELIABLE || reliable * 2 >= self.mcvs.len() {
            return nocap_model::estimate::to_pairs(&self.mcvs);
        }
        self.mcvs
            .iter()
            .map(|e| {
                let hist = self.histogram_estimate(e.key).round() as u64;
                // Never exceed the sketch count (an upper bound on truth).
                (e.key, hist.clamp(1, e.count.max(1)))
            })
            .collect()
    }

    /// Best available frequency estimate for one key: the SpaceSaving
    /// estimate when monitored, otherwise the Count-Min upper bound capped
    /// by the unmonitored ceiling.
    pub fn estimate_frequency(&self, key: u64) -> u64 {
        match self.spacesaving.estimate(key) {
            Some((count, _)) => count,
            None => self.countmin.estimate(key).min(self.unmonitored_ceiling),
        }
    }

    /// Equi-width fallback estimate for one key (uniformity within bucket).
    pub fn histogram_estimate(&self, key: u64) -> f64 {
        self.histogram.estimate(key)
    }

    /// Resident size of the retained sketches, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.spacesaving.memory_bytes()
            + self.countmin.memory_bytes()
            + self.histogram.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocap_storage::{Record, RecordLayout, Relation, SimDevice, StorageError};

    fn skewed_relation(device: nocap_storage::device::DeviceRef, n_keys: u64) -> Relation {
        // Key k appears (n_keys / (k+1)).max(1) times, round-robin order.
        let mut keys: Vec<u64> = Vec::new();
        for k in 0..n_keys {
            for _ in 0..(n_keys / (k + 1)).max(1) {
                keys.push(k);
            }
        }
        keys.sort_by_key(|&k| (k.wrapping_mul(0x9E3779B97F4A7C15)) >> 32);
        Relation::bulk_load(
            device,
            RecordLayout::new(24),
            4096,
            keys.into_iter().map(|k| Record::with_fill(k, 24, 0)),
        )
        .unwrap()
    }

    #[test]
    fn one_pass_collects_exact_stream_length() {
        let device = SimDevice::new_ref();
        let rel = skewed_relation(device, 500);
        let mut collector = StatsCollector::new(StatsConfig::default());
        collector.consume(rel.scan()).unwrap();
        let summary = collector.finish();
        assert_eq!(summary.stream_len() as usize, rel.num_records());
        assert!(summary.distinct_keys() > 0.0);
        assert_eq!(summary.min_key(), Some(0));
        assert_eq!(summary.max_key(), Some(499));
    }

    #[test]
    fn budget_is_charged_to_the_pool_and_released() {
        let device = SimDevice::new_ref();
        let rel = skewed_relation(device, 200);
        let pool = BufferPool::new(32);
        let mut collector = StatsCollector::with_budget(&pool, 8, 4096).unwrap();
        assert_eq!(pool.in_use(), 8, "collection must hold its pages");
        collector.consume(rel.scan()).unwrap();
        let summary = collector.finish();
        assert_eq!(pool.in_use(), 0, "finish must release the reservation");
        assert!(!summary.mcvs().is_empty());
    }

    #[test]
    fn over_budget_collection_is_rejected() {
        let pool = BufferPool::new(4);
        let err = StatsCollector::with_budget(&pool, 8, 4096).unwrap_err();
        assert!(matches!(err, StorageError::OutOfMemory { .. }));
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn sketch_sizing_fits_the_requested_pages() {
        for page_size in [256usize, 512, 1024, 4096, 16_384] {
            for pages in [1usize, 2, 4, 16, 64, 256] {
                let config = StatsConfig::for_budget_pages(pages, page_size);
                assert!(
                    config.memory_pages(page_size) <= pages,
                    "{pages} x {page_size}-byte budget produced {} pages of sketches",
                    config.memory_pages(page_size)
                );
            }
        }
    }

    #[test]
    fn tiny_budgets_and_small_pages_do_not_panic_or_undercharge() {
        // Regression: the old fixed sizing floors (~2 KB) exceeded one small
        // page, tripping a debug assert and under-reserving in release.
        let pool = BufferPool::new(16);
        let collector = StatsCollector::with_budget(&pool, 1, 1024).unwrap();
        assert_eq!(pool.in_use(), 1, "1 KB of sketches must fit one 1 KB page");
        assert!(collector.config().memory_bytes() <= 1024);
        drop(collector);
        // Degenerate page size: the structural minimum (~232 B of sketches)
        // spans several 64-byte pages; the reservation covers the real
        // footprint instead of silently exceeding the single requested page.
        let collector = StatsCollector::with_budget(&pool, 1, 64).unwrap();
        let config = collector.config();
        assert_eq!(pool.in_use(), config.memory_pages(64));
        assert!(pool.in_use() >= 1);
    }

    #[test]
    fn mcv_estimates_bracket_the_truth() {
        let device = SimDevice::new_ref();
        let n_keys = 400u64;
        let rel = skewed_relation(device, n_keys);
        let mut collector = StatsCollector::new(StatsConfig {
            mcv_counters: 64,
            ..StatsConfig::default()
        });
        collector.consume(rel.scan()).unwrap();
        let summary = collector.finish();
        let truth = |k: u64| (n_keys / (k + 1)).max(1);
        for est in summary.mcvs().iter().take(10) {
            let t = truth(est.key);
            assert!(est.count >= t, "MCV count must not underestimate");
            assert!(est.guaranteed_count() <= t, "lower bound must hold");
        }
        // The hottest key must be identified.
        assert_eq!(summary.mcvs()[0].key, 0);
    }

    #[test]
    fn point_queries_fall_back_beyond_the_mcv_list() {
        let device = SimDevice::new_ref();
        let rel = skewed_relation(device, 300);
        let mut collector = StatsCollector::new(StatsConfig {
            mcv_counters: 16,
            ..StatsConfig::default()
        });
        collector.consume(rel.scan()).unwrap();
        let summary = collector.finish();
        // A cold key not in the 16-counter summary still gets a finite,
        // ceiling-capped estimate.
        let cold = 299u64;
        let est = summary.estimate_frequency(cold);
        assert!(est <= summary.unmonitored_ceiling().max(1));
    }

    #[test]
    fn planner_mcvs_trusts_the_sketch_on_skewed_streams() {
        let device = SimDevice::new_ref();
        let rel = skewed_relation(device, 400);
        let mut collector = StatsCollector::new(StatsConfig {
            mcv_counters: 64,
            ..StatsConfig::default()
        });
        collector.consume(rel.scan()).unwrap();
        let summary = collector.finish();
        assert!(
            summary.reliable_mcvs().count() >= 8,
            "a 1/k-skewed stream has provable heavy hitters"
        );
        let planner = summary.planner_mcvs();
        let raw = summary.mcv_pairs(summary.mcvs().len());
        assert_eq!(planner, raw, "skewed streams keep raw sketch counts");
    }

    #[test]
    fn planner_mcvs_falls_back_to_histogram_masses_on_uniform_streams() {
        let device = SimDevice::new_ref();
        // 4 000 distinct keys, 8 occurrences each, shuffled: far more keys
        // than counters, perfectly uniform.
        let mut keys: Vec<u64> = (0..4_000u64).flat_map(|k| [k; 8]).collect();
        keys.sort_by_key(|&k| k.wrapping_mul(0x9E3779B97F4A7C15) >> 16);
        let rel = Relation::bulk_load(
            device,
            RecordLayout::new(24),
            4096,
            keys.into_iter().map(|k| Record::with_fill(k, 24, 0)),
        )
        .unwrap();
        let mut collector = StatsCollector::new(StatsConfig {
            mcv_counters: 128,
            ..StatsConfig::default()
        });
        collector.consume(rel.scan()).unwrap();
        let summary = collector.finish();
        assert!(
            summary.reliable_mcvs().count() < 8,
            "uniform streams must not produce provable heavy hitters"
        );
        let planner = summary.planner_mcvs();
        assert!(!planner.is_empty(), "fallback keeps the tracked keys");
        // The raw SpaceSaving counts are dominated by the N/counters error
        // (32000/128 = 250 vs a true frequency of 8); the histogram-backed
        // masses must land near the truth instead.
        let raw_mean = summary.mcvs().iter().map(|e| e.count as f64).sum::<f64>()
            / summary.mcvs().len() as f64;
        let fallback_mean =
            planner.iter().map(|&(_, c)| c as f64).sum::<f64>() / planner.len() as f64;
        assert!(raw_mean > 10.0 * 8.0, "raw counts are noise-dominated");
        assert!(
            fallback_mean < 4.0 * 8.0,
            "histogram masses should be near the true per-key frequency \
             (got {fallback_mean:.1} vs truth 8)"
        );
    }

    #[test]
    fn merge_accumulates_stream_length_and_key_range() {
        let config = StatsConfig::default();
        let mut a = StatsCollector::new_shard(config);
        let mut b = StatsCollector::new_shard(config);
        for k in 10..60u64 {
            a.observe(k);
        }
        for k in 40..90u64 {
            b.observe(k);
        }
        a.merge(&b);
        assert_eq!(a.observed(), 100);
        let summary = a.finish();
        assert_eq!(summary.min_key(), Some(10));
        assert_eq!(summary.max_key(), Some(89));
        assert_eq!(summary.stream_len(), 100);
    }

    #[test]
    fn merging_an_empty_shard_is_the_identity() {
        let config = StatsConfig::default();
        let device = SimDevice::new_ref();
        let rel = skewed_relation(device, 120);
        let mut a = StatsCollector::new_shard(config);
        a.consume(rel.scan()).unwrap();
        let empty = StatsCollector::new_shard(config);
        let mut merged = StatsCollector::new_shard(config);
        merged.consume(rel.scan()).unwrap();
        merged.merge(&empty);
        assert_eq!(merged.finish(), a.finish());
    }

    #[test]
    #[should_panic(expected = "identical sketch configurations")]
    fn merging_mismatched_configs_panics() {
        let mut a = StatsCollector::new_shard(StatsConfig::default());
        let b = StatsCollector::new_shard(StatsConfig {
            mcv_counters: 7,
            ..StatsConfig::default()
        });
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "same origin")]
    fn merging_a_shard_collector_into_a_streaming_collector_panics() {
        // The streaming collector's histogram anchors at its first key; the
        // shard collector's is pinned. Silently mixing the two would break
        // the determinism guarantee, so the histograms refuse.
        let mut streaming = StatsCollector::new(StatsConfig::default());
        streaming.observe(42);
        let mut shard = StatsCollector::new_shard(StatsConfig::default());
        shard.observe(7);
        streaming.merge(&shard);
    }

    #[test]
    fn collect_parallel_equals_a_single_shard_collector_in_the_exact_regime() {
        // 300 distinct keys, 1024 SpaceSaving counters: every shard sketch
        // and the fold are exact, so the parallel summary must equal a
        // sequential single-collector pass bit for bit.
        let device = SimDevice::new_ref();
        let rel = skewed_relation(device, 300);
        let config = StatsConfig::default();
        let mut sequential = StatsCollector::new_shard(config);
        sequential.consume(rel.scan()).unwrap();
        let sequential = sequential.finish();
        for threads in [1usize, 2, 4, 8] {
            let parallel = StatsCollector::collect_parallel(config, &rel, threads).unwrap();
            assert_eq!(
                parallel, sequential,
                "parallel collection diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn collect_parallel_is_thread_count_invariant_beyond_the_exact_regime() {
        // 500 distinct keys vs 32 counters: SpaceSaving overflows, where a
        // *scan-sharded* merge would depend on the shard boundaries. The
        // fixed shard grid + canonical fold keeps the summary identical for
        // every thread count anyway — the core determinism guarantee.
        let device = SimDevice::new_ref();
        let rel = skewed_relation(device, 500);
        let config = StatsConfig {
            mcv_counters: 32,
            ..StatsConfig::default()
        };
        let baseline = StatsCollector::collect_parallel(config, &rel, 1).unwrap();
        for threads in [2usize, 4, 8] {
            let parallel = StatsCollector::collect_parallel(config, &rel, threads).unwrap();
            assert_eq!(parallel, baseline, "summary diverged at {threads} threads");
        }
        assert_eq!(baseline.stream_len() as usize, rel.num_records());
    }

    #[test]
    fn collect_parallel_reads_every_page_exactly_once() {
        let device = SimDevice::new_ref();
        let rel = skewed_relation(device.clone(), 400);
        device.reset_stats();
        let _ = StatsCollector::collect_parallel(StatsConfig::default(), &rel, 4).unwrap();
        assert_eq!(device.stats().reads() as usize, rel.num_pages());
        assert_eq!(device.stats().writes(), 0);
    }

    #[test]
    fn collect_parallel_with_budget_charges_every_shard_and_releases() {
        let device = SimDevice::new_ref();
        let rel = skewed_relation(device, 300);
        let pool = BufferPool::new(64);
        let summary =
            StatsCollector::collect_parallel_with_budget(&pool, 4, 4096, &rel, 4).unwrap();
        assert_eq!(pool.in_use(), 0, "all shard reservations must be released");
        assert_eq!(
            pool.peak(),
            4 * StatsCollector::shard_count(&rel),
            "every shard collector's pages must have been charged"
        );
        assert!(!summary.mcvs().is_empty());
    }

    #[test]
    fn collect_parallel_with_budget_rejects_an_oversubscribed_pool_before_scanning() {
        let device = SimDevice::new_ref();
        let rel = skewed_relation(device.clone(), 300);
        assert_eq!(StatsCollector::shard_count(&rel), 8);
        // 8 shards x 4 pages = 32 needed; a 16-page pool must fail before
        // any page is read, with nothing leaked, at every thread count.
        for threads in [1usize, 4] {
            let pool = BufferPool::new(16);
            device.reset_stats();
            let err = StatsCollector::collect_parallel_with_budget(&pool, 4, 4096, &rel, threads)
                .unwrap_err();
            assert!(matches!(err, StorageError::OutOfMemory { .. }));
            assert_eq!(pool.in_use(), 0, "failed collection must leak nothing");
            assert_eq!(
                device.stats().reads(),
                0,
                "an oversubscribed pool must fail up front, not mid-scan"
            );
        }
    }

    #[test]
    fn collect_parallel_handles_tiny_and_empty_relations() {
        let device = SimDevice::new_ref();
        let empty = Relation::bulk_load(
            device.clone(),
            RecordLayout::new(24),
            4096,
            std::iter::empty::<Record>(),
        )
        .unwrap();
        let summary = StatsCollector::collect_parallel(StatsConfig::default(), &empty, 4).unwrap();
        assert_eq!(summary.stream_len(), 0);
        assert_eq!(summary.min_key(), None);
        // One page: fewer pages than STATS_SHARDS, still every thread count
        // agrees.
        let tiny = Relation::bulk_load(
            device,
            RecordLayout::new(24),
            4096,
            (0..10u64).map(|k| Record::with_fill(k, 24, 0)),
        )
        .unwrap();
        assert_eq!(StatsCollector::shard_count(&tiny), 1);
        let one = StatsCollector::collect_parallel(StatsConfig::default(), &tiny, 1).unwrap();
        let eight = StatsCollector::collect_parallel(StatsConfig::default(), &tiny, 8).unwrap();
        assert_eq!(one, eight);
        assert_eq!(one.stream_len(), 10);
    }

    #[test]
    fn consume_keys_matches_consume_scan() {
        let device = SimDevice::new_ref();
        let rel = skewed_relation(device, 250);
        let mut by_scan = StatsCollector::new(StatsConfig::default());
        by_scan.consume(rel.scan()).unwrap();
        let mut by_keys = StatsCollector::new(StatsConfig::default());
        by_keys
            .consume_keys(rel.scan().map(|r| r.map(|rec| rec.key())))
            .unwrap();
        let (a, b) = (by_scan.finish(), by_keys.finish());
        assert_eq!(a.stream_len(), b.stream_len());
        assert_eq!(a.mcvs(), b.mcvs());
        assert_eq!(a.distinct_keys(), b.distinct_keys());
    }
}
