//! Multi-threaded NOCAP execution: `run_parallel`.
//!
//! The partitioning passes of Algorithms 8 and 9 route each record
//! independently, so [`NocapJoin::run_parallel`] shards both scans across a
//! worker pool (`nocap-par`) and fans the partition-wise probe phase out
//! over the spilled partition pairs. The engine is built so that, for
//! every thread count, it produces **the same join output and the same
//! modeled I/O trace** as the sequential [`NocapJoin::run_with_plan`]:
//!
//! * Workers scan disjoint page ranges ([`page_shards`]), so the base scans
//!   cost exactly `‖R‖ + ‖S‖` sequential reads.
//! * Every spill partition keeps **one** shared output-buffer page
//!   ([`SharedWriterSet`]), so a partition receiving `n` records flushes
//!   exactly `⌈n / b⌉` random writes regardless of arrival order.
//! * Residual destaging uses the deterministic per-partition quotas of
//!   [`RestGeometry`](crate::exec::RestGeometry): a partition's page-out
//!   bit depends only on its total record count, never on interleaving.
//! * The probe phase joins the same partition pairs with the same
//!   [`smart_partition_join`]; each pair's I/O is independent of the order
//!   pairs are claimed from the work queue.
//!
//! During the partitioning phases memory stays inside the same §4.1
//! budget: the pool reserves the two streaming pages and the plan's fixed
//! structures exactly as the sequential path does, and the residual budget
//! is carved into per-partition quotas whose reservations are visible in
//! the pool. Two knowing simplifications: each worker holds one transient
//! scan-buffer page (the model charges one logical input page for the
//! pipeline, as the paper does), and the fanned-out probe phase runs up to
//! `threads` partition-pair NBJs concurrently, each with the `B − 2`-page
//! chunk the cost model prescribes — peak physical probe memory is
//! `threads × B` pages even though the modeled I/O is unchanged. Use fewer
//! threads when physical memory, not I/O, is the binding constraint.

use std::sync::Mutex;

use nocap_model::pairwise::smart_partition_join;
use nocap_model::JoinRunReport;
use nocap_obs::{Obs, Phase};
use nocap_par::{page_shards, run_workers_obs, sum_tasks_obs, ParallelStager, SharedWriterSet};
use nocap_stats::StatsCollector;
use nocap_storage::{
    into_inner_unpoisoned, lock_unpoisoned, BufferPool, IoKind, JoinHashTable, PartitionHandle,
    RadixRouter, Relation, Reservation, SpillGuard,
};

use crate::exec::{record_partition_skew, NocapJoin, RestGeometry};
use crate::plan::NocapPlan;
use crate::planner::plan_nocap;

impl NocapJoin {
    /// Plans and executes the join of `r ⋈ s` on `threads` worker threads.
    ///
    /// `threads == 0` selects [`nocap_par::default_threads`] (the
    /// `NOCAP_THREADS` environment variable, falling back to the machine's
    /// parallelism). For every thread count the result — output cardinality
    /// and the full per-phase I/O trace — is identical to [`NocapJoin::run`].
    pub fn run_parallel(
        &self,
        r: &Relation,
        s: &Relation,
        mcvs: &[(u64, u64)],
        threads: usize,
    ) -> nocap_storage::Result<JoinRunReport> {
        self.run_parallel_obs(r, s, mcvs, threads, &Obs::off())
    }

    /// [`run_parallel`](Self::run_parallel) with observability — see
    /// [`run_obs`](Self::run_obs). Worker scans and probe tasks additionally
    /// record per-worker timeline spans.
    pub fn run_parallel_obs(
        &self,
        r: &Relation,
        s: &Relation,
        mcvs: &[(u64, u64)],
        threads: usize,
        obs: &Obs,
    ) -> nocap_storage::Result<JoinRunReport> {
        let plan = plan_nocap(
            mcvs,
            r.num_records(),
            s.num_records() as u64,
            self.spec(),
            &self.config().planner,
        );
        self.run_parallel_with_plan_obs(r, s, &plan, threads, obs)
    }

    /// Plans from a one-pass sketch summary and executes on `threads`
    /// worker threads — the parallel twin of
    /// [`run_with_collected_stats`](Self::run_with_collected_stats)
    /// (identical plan, since the summary is the same artifact; identical
    /// output and per-phase I/O for every thread count).
    pub fn run_parallel_with_collected_stats(
        &self,
        r: &Relation,
        s: &Relation,
        stats: &nocap_stats::StatsSummary,
        threads: usize,
    ) -> nocap_storage::Result<JoinRunReport> {
        self.run_parallel_with_collected_stats_obs(r, s, stats, threads, &Obs::off())
    }

    /// The observed variant of
    /// [`run_parallel_with_collected_stats`](Self::run_parallel_with_collected_stats).
    pub fn run_parallel_with_collected_stats_obs(
        &self,
        r: &Relation,
        s: &Relation,
        stats: &nocap_stats::StatsSummary,
        threads: usize,
        obs: &Obs,
    ) -> nocap_storage::Result<JoinRunReport> {
        let mcvs = stats.planner_mcvs();
        let plan = plan_nocap(
            &mcvs,
            r.num_records(),
            stats.stream_len(),
            self.spec(),
            &self.config().planner,
        );
        self.run_parallel_with_plan_obs(r, s, &plan, threads, obs)
    }

    /// The fully self-contained multi-threaded pipeline: sharded sketch
    /// collection over S ([`StatsCollector::collect_parallel_with_budget`]),
    /// planning from the summary alone, and parallel execution — every
    /// stage on `threads` workers.
    ///
    /// Because the sharded collector's summary is bit-identical for every
    /// thread count, the plan — and therefore the executor's output *and*
    /// per-phase modeled I/O — is identical to the sequential
    /// [`collect_and_run`](Self::collect_and_run) for every `threads`,
    /// including the statistics scan itself (each page of S is read exactly
    /// once). `stats_pages` is the per-shard-collector budget, as in
    /// `collect_and_run`.
    pub fn collect_and_run_parallel(
        &self,
        r: &Relation,
        s: &Relation,
        stats_pages: usize,
        threads: usize,
    ) -> nocap_storage::Result<JoinRunReport> {
        self.collect_and_run_parallel_obs(r, s, stats_pages, threads, &Obs::off())
    }

    /// The observed variant of
    /// [`collect_and_run_parallel`](Self::collect_and_run_parallel): the
    /// sharded sketch pass records a `stats` phase span and per-shard worker
    /// spans into the same trace as the join.
    pub fn collect_and_run_parallel_obs(
        &self,
        r: &Relation,
        s: &Relation,
        stats_pages: usize,
        threads: usize,
        obs: &Obs,
    ) -> nocap_storage::Result<JoinRunReport> {
        // Attach before the sketch pass so stats-phase reads land in the
        // same I/O trace as the join; the inner attach in
        // `run_parallel_with_plan_obs` nests onto this one.
        let _io_trace = obs.attach_io(s.device());
        let pool = BufferPool::new(self.spec().buffer_pages);
        let summary = StatsCollector::collect_parallel_with_budget_obs(
            &pool,
            stats_pages,
            self.spec().page_size,
            s,
            threads,
            obs,
        )?;
        drop(pool);
        self.run_parallel_with_collected_stats_obs(r, s, &summary, threads, obs)
    }

    /// Executes a pre-computed plan on `threads` worker threads (see
    /// [`run_parallel`](Self::run_parallel)).
    pub fn run_parallel_with_plan(
        &self,
        r: &Relation,
        s: &Relation,
        plan: &NocapPlan,
        threads: usize,
    ) -> nocap_storage::Result<JoinRunReport> {
        self.run_parallel_with_plan_obs(r, s, plan, threads, &Obs::off())
    }

    /// [`run_parallel_with_plan`](Self::run_parallel_with_plan) with
    /// observability: main-thread phase spans around each pass, per-worker
    /// scan spans, per-task probe spans, partition skew histograms and the
    /// buffer-pool high-water gauge. Recording never influences routing,
    /// destaging or claim order — clocks stay in the obs channel.
    pub fn run_parallel_with_plan_obs(
        &self,
        r: &Relation,
        s: &Relation,
        plan: &NocapPlan,
        threads: usize,
        obs: &Obs,
    ) -> nocap_storage::Result<JoinRunReport> {
        let threads = if threads == 0 {
            nocap_par::default_threads()
        } else {
            threads
        };
        let spec = *self.spec();
        let device = r.device().clone();
        let _io_trace = obs.attach_io(&device);
        let pool = BufferPool::new(spec.buffer_pages);
        // Identical budget breakdown to the sequential path: one streaming
        // input page, one output page, then the plan's fixed structures.
        let _io_pages = pool.reserve(2)?;
        let _fixed = pool.reserve(plan.fixed_memory_pages(&spec).min(pool.available()))?;
        let rest_budget = pool.available();
        // Reserve the probe-side bloom *after* reading the residual budget
        // (so geometry matches the sequential path) and *before* the quota
        // carving below consumes every remaining page. Both executors read
        // the same `pool.available()` here, so the filter is sized
        // identically and its bits depend only on the staged key multiset —
        // thread-count invariant.
        let bloom_reservation = self.config().bloom.reserve(&pool);

        let timer = obs.run_timer();
        let base_stats = device.stats();

        let mem_set = plan.mem_key_set();
        let disk_map = plan.disk_map();
        let m_disk = plan.num_designated();

        let geometry = RestGeometry::new(
            &spec,
            rest_budget,
            plan.estimated_rest_keys,
            self.config().planner.rh_params,
        );
        // Make the quota carving visible to the pool: one reservation per
        // residual partition, together covering exactly the residual budget
        // (the same even split as `geometry.caps`).
        let _quotas: Vec<Reservation> = pool.carve_remaining(geometry.num_partitions());

        // ---- Phase 1: partition R (Algorithm 8, sharded) -----------------
        let stager = ParallelStager::new(device.clone(), r.layout(), spec, geometry.caps.clone());
        let r_disk = SharedWriterSet::new(
            device.clone(),
            r.layout(),
            spec.page_size,
            IoKind::RandWrite,
            m_disk,
        );
        let ht_shared = Mutex::new(JoinHashTable::new(r.layout(), spec.page_size, spec.fudge));
        let r_shards = page_shards(r.num_pages(), threads);
        let r_partition_span = obs.span(Phase::Partition);
        let stages = run_workers_obs(threads, obs, Phase::Partition, |w, _wobs| {
            let mut stage = stager.worker_stage();
            // Per-worker radix write buffers: residual records batch up per
            // partition and flush into the stager in cache-friendly runs.
            // Per-partition arrival order within this worker is preserved
            // and quota destaging depends only on per-partition counts, so
            // staged contents and spill decisions are unchanged.
            let mut router = RadixRouter::new(r.layout(), geometry.num_partitions());
            let mut scan = r.scan_range(r_shards[w].clone());
            while let Some(page) = scan.next_page()? {
                for rec in page.record_refs() {
                    if mem_set.contains(&rec.key()) {
                        // R is the primary-key side: cached keys are rare, so
                        // this lock is cold.
                        lock_unpoisoned(&ht_shared).insert_ref(rec);
                    } else if let Some(&pid) = disk_map.get(&rec.key()) {
                        r_disk.push(pid as usize, rec)?;
                    } else {
                        let p = geometry.rh.partition_of(rec.key());
                        router.push(p, rec, &mut |p, r| stager.insert(&mut stage, p, r))?;
                    }
                }
            }
            router.finish(&mut |p, r| stager.insert(&mut stage, p, r))?;
            Ok(stage)
        })?;
        drop(r_partition_span);
        let spill_span = obs.span(Phase::Spill);
        let rest_build = stager.finish(stages)?;
        // As in the sequential executor: every finished spill handle is
        // adopted immediately, so any later error deletes all spill files.
        let mut spill_guard = SpillGuard::new();
        spill_guard.adopt_all(rest_build.spilled.iter().flatten().cloned());
        let r_disk_handles = r_disk.finish_dense()?;
        spill_guard.adopt_all(r_disk_handles.iter().cloned());
        drop(spill_span);
        let mut ht_mem = into_inner_unpoisoned(ht_shared);
        {
            let _build_span = obs.span(Phase::Build);
            for rec in rest_build.staged_records.iter() {
                ht_mem.insert_ref(rec);
            }
        }
        // Freeze the completed build side for vectorized probes and build
        // the probe pre-filter from its keys (order-invariant bit contents).
        ht_mem.seal();
        let bloom = self
            .config()
            .bloom
            .build(&ht_mem, &bloom_reservation, spec.page_size);

        // ---- Phase 2: partition / probe S (Algorithm 9, sharded) ---------
        let s_disk = SharedWriterSet::new(
            device.clone(),
            s.layout(),
            spec.page_size,
            IoKind::RandWrite,
            m_disk,
        );
        let s_rest = SharedWriterSet::new_masked(
            device.clone(),
            s.layout(),
            spec.page_size,
            IoKind::RandWrite,
            &rest_build.pob,
        );
        let s_shards = page_shards(s.num_pages(), threads);
        let ht_ref = &ht_mem;
        let bloom_ref = &bloom;
        let pob = &rest_build.pob;
        let s_partition_span = obs.span(Phase::Partition);
        let probe_counts = run_workers_obs(threads, obs, Phase::Partition, |w, _wobs| {
            let mut output = 0u64;
            let mut scan = s.scan_range(s_shards[w].clone());
            while let Some(page) = scan.next_page()? {
                for rec in page.record_refs() {
                    if let Some(&pid) = disk_map.get(&rec.key()) {
                        s_disk.push(pid as usize, rec)?;
                        continue;
                    }
                    // Bloom-negative keys take the identical `matches == 0`
                    // route (no false negatives), so routing and modeled
                    // I/O match the filterless run bit for bit.
                    let matches = if bloom_ref.as_ref().is_none_or(|b| b.may_contain(rec.key())) {
                        ht_ref.probe_count(rec.key())
                    } else {
                        0
                    };
                    if matches > 0 {
                        output += matches;
                        continue;
                    }
                    let part = geometry.rh.partition_of(rec.key());
                    if pob[part] {
                        s_rest.push(part, rec)?;
                    }
                    // else: the partition stayed in memory and the key had
                    // no match.
                }
            }
            Ok(output)
        })?;
        let mut output: u64 = probe_counts.into_iter().sum();
        drop(s_partition_span);
        let partition_io = device.stats().since(&base_stats);
        record_partition_skew(
            obs,
            &r_disk_handles,
            rest_build.spilled.iter().flatten(),
            rest_build.pob.len(),
        );

        // ---- Phase 3: partition-wise joins, fanned out -------------------
        // Partial output-buffer pages flush inside this window, exactly
        // where the sequential executor flushes them.
        let probe_base = device.stats();
        let probe_span = obs.span(Phase::Probe);
        let s_disk_handles = s_disk.finish_dense()?;
        spill_guard.adopt_all(s_disk_handles.iter().cloned());
        let s_rest_handles = s_rest.finish_all()?;
        spill_guard.adopt_all(s_rest_handles.iter().flatten().cloned());
        let mut pairs: Vec<(PartitionHandle, PartitionHandle)> = Vec::new();
        for (r_part, s_part) in r_disk_handles.iter().zip(s_disk_handles.iter()) {
            pairs.push((r_part.clone(), s_part.clone()));
        }
        for (maybe_r, maybe_s) in rest_build.spilled.iter().zip(s_rest_handles.iter()) {
            if let (Some(r_part), Some(s_part)) = (maybe_r, maybe_s) {
                pairs.push((r_part.clone(), s_part.clone()));
            }
        }
        output += sum_tasks_obs(threads, obs, Phase::Probe, pairs.len(), |i| {
            smart_partition_join(&pairs[i].0, &pairs[i].1, &spec, 1)
        })?;
        drop(probe_span);
        let probe_io = device.stats().since(&probe_base);

        // Dropping the guard deletes every spill file (not counted as I/O).
        drop(spill_guard);

        obs.gauge_max("buffer_pool_peak_pages", pool.peak() as u64);
        let mut report = JoinRunReport::new("NOCAP");
        report.output_records = output;
        report.partition_io = partition_io;
        report.probe_io = probe_io;
        report.finish_run(timer, obs);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::NocapConfig;
    use nocap_model::JoinSpec;
    use nocap_storage::{Record, RecordLayout, SimDevice};

    /// Builds a deterministic workload on a fresh device: R holds keys
    /// `0..n_r`, S holds `counts(k)` records per key, shuffled.
    fn build(
        n_r: u64,
        counts: impl Fn(u64) -> u64,
        spec: &JoinSpec,
    ) -> (Relation, Relation, Vec<(u64, u64)>) {
        let device = SimDevice::new_ref();
        let payload = spec.r_layout.payload_bytes();
        let r = Relation::bulk_load(
            device.clone(),
            spec.r_layout,
            spec.page_size,
            (0..n_r).map(|k| Record::with_fill(k, payload, 1)),
        )
        .unwrap();
        let mut s_keys: Vec<u64> = Vec::new();
        for k in 0..n_r {
            for _ in 0..counts(k) {
                s_keys.push(k);
            }
        }
        let salt = s_keys.len() as u64;
        s_keys.sort_by_key(|&k| crate::rounded_hash::mix_key(k.wrapping_add(salt)));
        let s = Relation::bulk_load(
            device.clone(),
            spec.s_layout,
            spec.page_size,
            s_keys.iter().map(|&k| Record::with_fill(k, payload, 2)),
        )
        .unwrap();
        let mut mcv: Vec<(u64, u64)> = (0..n_r).map(|k| (k, counts(k))).collect();
        mcv.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
        mcv.truncate((n_r as usize / 20).max(10));
        device.reset_stats();
        (r, s, mcv)
    }

    fn layout_of(spec: &JoinSpec) -> RecordLayout {
        spec.r_layout
    }

    #[test]
    fn parallel_matches_sequential_io_and_output_exactly() {
        let spec = JoinSpec::paper_synthetic(128, 48);
        let counts = |k: u64| if k < 8 { 250 } else { 2 };
        let join = NocapJoin::new(spec, NocapConfig::default());
        let _ = layout_of(&spec);

        let (r, s, mcvs) = build(3_000, counts, &spec);
        let sequential = join.run(&r, &s, &mcvs).unwrap();
        for threads in [1usize, 2, 4] {
            let (r, s, mcvs) = build(3_000, counts, &spec);
            let parallel = join.run_parallel(&r, &s, &mcvs, threads).unwrap();
            assert_eq!(
                parallel.output_records, sequential.output_records,
                "output differs at {threads} threads"
            );
            assert_eq!(
                parallel.partition_io, sequential.partition_io,
                "partition I/O differs at {threads} threads"
            );
            assert_eq!(
                parallel.probe_io, sequential.probe_io,
                "probe I/O differs at {threads} threads"
            );
        }
    }

    #[test]
    fn parallel_join_cleans_up_all_spill_files() {
        let spec = JoinSpec::paper_synthetic(128, 32);
        let counts = |k: u64| (k % 5) + 1;
        let join = NocapJoin::new(spec, NocapConfig::default());
        let (r, s, mcvs) = build(2_500, counts, &spec);
        let device = r.device().clone();
        let report = join.run_parallel(&r, &s, &mcvs, 3).unwrap();
        assert!(report.output_records > 0);
        // Only the two base relations should remain on the device.
        let sim = device;
        assert_eq!(
            sim.file_pages(r.file()).unwrap() + sim.file_pages(s.file()).unwrap(),
            r.num_pages() + s.num_pages()
        );
    }

    #[test]
    fn sketch_pipeline_is_identical_at_every_thread_count() {
        // collect_and_run_parallel(n) must reproduce collect_and_run (its
        // n = 1 instance) exactly: the sharded summary is thread-count
        // invariant, so the plan, the output and the per-phase I/O all are.
        let spec = JoinSpec::paper_synthetic(128, 48);
        let counts = |k: u64| if k < 12 { 180 } else { 3 };
        let join = NocapJoin::new(spec, NocapConfig::default());
        let (r, s, _) = build(2_500, counts, &spec);
        let sequential = join.collect_and_run(&r, &s, 4).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let (r, s, _) = build(2_500, counts, &spec);
            let parallel = join.collect_and_run_parallel(&r, &s, 4, threads).unwrap();
            assert_eq!(
                parallel.output_records, sequential.output_records,
                "pipeline output differs at {threads} threads"
            );
            assert_eq!(
                parallel.partition_io, sequential.partition_io,
                "pipeline partition I/O differs at {threads} threads"
            );
            assert_eq!(
                parallel.probe_io, sequential.probe_io,
                "pipeline probe I/O differs at {threads} threads"
            );
        }
    }

    #[test]
    fn parallel_sketch_collection_reads_s_exactly_once() {
        let spec = JoinSpec::paper_synthetic(128, 48);
        let counts = |k: u64| (k % 6) + 1;
        let join = NocapJoin::new(spec, NocapConfig::default());
        let (r, s, _) = build(2_000, counts, &spec);
        let device = r.device().clone();
        device.reset_stats();
        let report = join.collect_and_run_parallel(&r, &s, 4, 4).unwrap();
        let device_ios = device.stats().reads() + device.stats().writes();
        // The statistics scan costs exactly ||S|| sequential reads on top
        // of the join's own modeled I/O, sharded or not.
        assert_eq!(
            device_ios,
            report.total_ios() + s.num_pages() as u64,
            "sharded stats collection must read each S page exactly once"
        );
    }

    #[test]
    fn zero_threads_selects_a_default() {
        let spec = JoinSpec::paper_synthetic(128, 64);
        let counts = |_k: u64| 3u64;
        let join = NocapJoin::new(spec, NocapConfig::default());
        let (r, s, mcvs) = build(1_000, counts, &spec);
        let report = join.run_parallel(&r, &s, &mcvs, 0).unwrap();
        assert_eq!(report.output_records, 3_000);
    }
}
