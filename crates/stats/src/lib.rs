//! # nocap-stats
//!
//! Bounded-memory streaming statistics feeding the NOCAP planner.
//!
//! NOCAP's premise is planning from *limited* correlation knowledge: the
//! top-k most-common-value (MCV) list. The rest of this workspace can build
//! those statistics from a full [`CorrelationTable`](nocap_model::ct) — an
//! oracle that would never fit the memory budget of a real system. This
//! crate produces the same statistics in **one streaming pass** over the
//! fact relation with sketches whose memory is charged, in pages, against
//! the join's own [`BufferPool`](nocap_storage::BufferPool):
//!
//! * [`spacesaving`] — the SpaceSaving heavy-hitter summary (Metwally et
//!   al.): `k` counters track the hottest keys with per-key error bounds and
//!   the global guarantee `error ≤ N / k`.
//! * [`countmin`] — a Count-Min sketch for per-key frequency point queries
//!   on keys the SpaceSaving summary does not track (overestimate-only).
//! * [`distinct`] — a KMV (k-minimum-values) distinct-count estimator, used
//!   to size the residual partitioner (`n_R − |MCV|` keys).
//! * [`histogram`] — an equi-width fallback histogram for coarse frequency
//!   mass over key ranges when nothing better is available.
//! * [`collector`] — [`StatsCollector`]: wires all four behind a single
//!   one-pass consumer of a [`RelationScan`](nocap_storage::RelationScan),
//!   sized from a page budget, producing a [`StatsSummary`] whose
//!   [`McvEstimate`](nocap_model::McvEstimate)s feed the planner directly.
//!   [`StatsCollector::collect_parallel`] shards the pass across `nocap-par`
//!   workers over a fixed [`STATS_SHARDS`]-way page grid and folds the
//!   per-shard sketches in canonical order, producing a summary that is
//!   bit-identical for every thread count.
//!
//! ```
//! use nocap_stats::{StatsCollector, StatsConfig};
//! use nocap_storage::{BufferPool, Record, RecordLayout, Relation, SimDevice};
//!
//! // A skewed stream: key 0 appears 500 times, keys 1..100 once each.
//! let device = SimDevice::new_ref();
//! let keys = std::iter::repeat(0u64)
//!     .take(500)
//!     .chain(1..100u64);
//! let s = Relation::bulk_load(
//!     device,
//!     RecordLayout::new(24),
//!     4096,
//!     keys.map(|k| Record::with_fill(k, 24, 0)),
//! )
//! .unwrap();
//!
//! // Collect within a 4-page budget charged to the pool.
//! let pool = BufferPool::new(64);
//! let mut collector = StatsCollector::with_budget(&pool, 4, 4096).unwrap();
//! collector.consume(s.scan()).unwrap();
//! let summary = collector.finish();
//!
//! assert_eq!(summary.stream_len(), 599);
//! let hottest = &summary.mcvs()[0];
//! assert_eq!(hottest.key, 0);
//! assert!(hottest.count >= 500);
//! assert!(hottest.guaranteed_count() <= 500);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod collector;
pub mod countmin;
pub mod distinct;
pub mod histogram;
pub mod spacesaving;

pub use collector::{StatsCollector, StatsConfig, StatsSummary, STATS_SHARDS};
pub use countmin::CountMinSketch;
pub use distinct::KmvSketch;
pub use histogram::EquiWidthHistogram;
pub use spacesaving::SpaceSaving;

/// SplitMix64 finalizer with a seed, the shared hash of every sketch in this
/// crate. Matches the mixing quality of the partition router in `nocap` while
/// letting each sketch row draw an independent hash family member.
#[inline]
pub(crate) fn mix_with_seed(key: u64, seed: u64) -> u64 {
    let mut z = key
        .wrapping_add(seed.wrapping_mul(0xA076_1D64_78BD_642F))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
