//! JOB-like workload (§5.2): the IMDB `cast_info` PK–FK joins.
//!
//! The paper joins the fact table `cast_info` against either `title`
//! (movies) or `name` (actors):
//!
//! * `cast_info ⋈ name` — highly skewed: prolific actors appear in a very
//!   large number of cast entries (the paper reports the top 50 actors
//!   covering ~0.6 % of `cast_info`);
//! * `cast_info ⋈ title` — moderately skewed: even blockbuster movies have
//!   bounded cast sizes (the top 50 movies cover < 0.1 %).
//!
//! The real IMDB snapshot is not redistributable, so this module generates
//! correlations with the same head-mass characteristics: a Zipf-shaped tail
//! whose exponent is calibrated per join so that the top-50 mass matches the
//! figures the paper quotes.

use rand::rngs::StdRng;
use rand::SeedableRng;

use nocap_storage::device::DeviceRef;

use crate::synthetic::{materialize, GeneratedWorkload};
use crate::zipf::ZipfSampler;

/// Which JOB join to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobJoin {
    /// `cast_info ⋈ title` (moderate skew).
    CastTitle,
    /// `cast_info ⋈ name` (high skew).
    CastName,
}

impl JobJoin {
    /// Zipf exponent used to shape the correlation for this join.
    fn alpha(self) -> f64 {
        match self {
            JobJoin::CastTitle => 0.55,
            JobJoin::CastName => 1.05,
        }
    }
}

/// Configuration of the JOB-like generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobConfig {
    /// Which join to model.
    pub join: JobJoin,
    /// Number of dimension records (movies or actors).
    pub n_keys: usize,
    /// Number of `cast_info` records.
    pub n_cast_info: usize,
    /// Record size in bytes.
    pub record_bytes: usize,
    /// Number of MCVs tracked.
    pub mcv_count: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl JobConfig {
    /// Laptop-scale defaults (the real tables have 36 M cast_info rows over
    /// 2.5 M titles / 4.2 M names; the ratio of facts to keys is preserved).
    pub fn scaled(join: JobJoin) -> Self {
        JobConfig {
            join,
            n_keys: 20_000,
            n_cast_info: 160_000,
            record_bytes: 256,
            mcv_count: 1_000,
            seed: 0x10B,
        }
    }
}

/// Generates the per-key cast_info counts for the requested join.
pub fn job_counts(config: &JobConfig) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let sampler = ZipfSampler::new(config.n_keys, config.join.alpha());
    sampler.tally(config.n_cast_info, &mut rng)
}

/// Generates the JOB-like workload.
pub fn generate(device: DeviceRef, config: &JobConfig) -> nocap_storage::Result<GeneratedWorkload> {
    let counts = job_counts(config);
    materialize(
        device,
        &counts,
        config.record_bytes,
        config.mcv_count,
        config.seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocap_storage::SimDevice;

    fn config(join: JobJoin) -> JobConfig {
        JobConfig {
            join,
            n_keys: 5_000,
            n_cast_info: 40_000,
            record_bytes: 64,
            mcv_count: 250,
            seed: 5,
        }
    }

    #[test]
    fn totals_match_the_fact_cardinality() {
        for join in [JobJoin::CastTitle, JobJoin::CastName] {
            let counts = job_counts(&config(join));
            assert_eq!(counts.iter().sum::<u64>(), 40_000);
        }
    }

    #[test]
    fn cast_name_is_more_skewed_than_cast_title() {
        let title = job_counts(&config(JobJoin::CastTitle));
        let name = job_counts(&config(JobJoin::CastName));
        let top50 = |counts: &[u64]| {
            let mut sorted = counts.to_vec();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            sorted[..50].iter().sum::<u64>() as f64
        };
        assert!(
            top50(&name) > 2.0 * top50(&title),
            "the actor-side join must concentrate much more mass in its head"
        );
    }

    #[test]
    fn workload_materializes_with_mcvs() {
        let device = SimDevice::new_ref();
        let wl = generate(device, &config(JobJoin::CastName)).unwrap();
        assert_eq!(wl.r.num_records(), 5_000);
        assert_eq!(wl.s.num_records(), 40_000);
        assert_eq!(wl.mcvs.len(), 250);
        assert!(wl.mcvs.windows(2).all(|w| w[0].1 >= w[1].1));
    }
}
