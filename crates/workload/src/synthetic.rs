//! The §5.1 synthetic sensitivity-analysis workload.
//!
//! Two relations: R holds the primary keys `0..n_R`, S holds `n_S` foreign
//! keys whose distribution over R's keys is either uniform or Zipf(α). The
//! paper uses `n_R` = 1 M, `n_S` = 8 M and 1 KB records (‖R‖ = 250 K pages,
//! ‖S‖ = 2 M pages); the scaled-down defaults here keep the same geometry
//! relative to the buffer-size sweep (see DESIGN.md §2).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use nocap_model::CorrelationTable;
use nocap_storage::device::DeviceRef;
use nocap_storage::{Record, RecordLayout, Relation};

use crate::mcv::extract_mcvs;
use crate::zipf::ZipfSampler;

/// Shape of the join correlation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Correlation {
    /// Every primary key matches (approximately) the same number of S
    /// records.
    Uniform,
    /// Foreign keys are drawn from a Zipf distribution with the given
    /// exponent (the paper uses α ∈ {0.7, 1.0, 1.3}).
    Zipf {
        /// The Zipf exponent α.
        alpha: f64,
    },
}

/// Configuration of the synthetic generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticConfig {
    /// Number of R records (primary keys).
    pub n_r: usize,
    /// Number of S records (foreign keys).
    pub n_s: usize,
    /// Serialized record size in bytes (key + payload), for both relations.
    pub record_bytes: usize,
    /// Join correlation shape.
    pub correlation: Correlation,
    /// How many most-common values are tracked as statistics (the paper
    /// tracks 5 % of the keys, k = 50 K for n_R = 1 M).
    pub mcv_count: usize,
    /// PRNG seed (all generation is deterministic given the seed).
    pub seed: u64,
}

impl SyntheticConfig {
    /// A laptop-scale version of the paper's workload: `n_R` = 20 K,
    /// `n_S` = 160 K, 256-byte records, 5 % MCVs.
    pub fn scaled_default(correlation: Correlation) -> Self {
        SyntheticConfig {
            n_r: 20_000,
            n_s: 160_000,
            record_bytes: 256,
            correlation,
            mcv_count: 1_000,
            seed: 0x0CA9,
        }
    }
}

/// A generated workload: the stored relations plus the exact correlation and
/// the MCV statistics handed to the skew-aware algorithms.
pub struct GeneratedWorkload {
    /// The dimension (primary-key) relation R.
    pub r: Relation,
    /// The fact (foreign-key) relation S.
    pub s: Relation,
    /// The exact correlation table (used by OCAP and as ground truth).
    pub ct: CorrelationTable,
    /// The tracked most-common values (key, frequency), most frequent first.
    pub mcvs: Vec<(u64, u64)>,
}

impl GeneratedWorkload {
    /// Record layout shared by both relations.
    pub fn layout(&self) -> RecordLayout {
        self.r.layout()
    }

    /// Streams the fact relation's join keys in storage order — the hook a
    /// streaming statistics collector consumes (`nocap-stats`'s
    /// `StatsCollector::consume_keys` takes exactly this shape). Each page
    /// costs one sequential read on the workload's device, so statistics
    /// collection is visible in the I/O trace like any other scan.
    pub fn stream_keys(&self) -> impl Iterator<Item = nocap_storage::Result<u64>> {
        self.s.scan().map(|r| r.map(|rec| rec.key()))
    }

    /// Like [`stream_keys`](Self::stream_keys) but over the dimension
    /// relation R (for collecting R-side statistics such as distinct counts).
    pub fn stream_r_keys(&self) -> impl Iterator<Item = nocap_storage::Result<u64>> {
        self.r.scan().map(|r| r.map(|rec| rec.key()))
    }

    /// The exact join output cardinality, derived from the correlation
    /// table (every S record matches exactly one R key in this PK–FK
    /// setting). Lets tests and benches verify a join's output without
    /// paying for a naive reference join.
    pub fn expected_join_output(&self) -> u64 {
        self.ct.total_matches()
    }
}

/// Generates per-key match counts for the requested correlation shape.
pub fn correlation_counts(config: &SyntheticConfig) -> Vec<u64> {
    match config.correlation {
        Correlation::Uniform => {
            let base = (config.n_s / config.n_r) as u64;
            let remainder = config.n_s % config.n_r;
            (0..config.n_r)
                .map(|i| base + u64::from(i < remainder))
                .collect()
        }
        Correlation::Zipf { alpha } => {
            let mut rng = StdRng::seed_from_u64(config.seed);
            let sampler = ZipfSampler::new(config.n_r, alpha);
            sampler.tally(config.n_s, &mut rng)
        }
    }
}

/// Materializes a workload from explicit per-key match counts.
///
/// `counts[i]` is the number of S records whose foreign key is `i`. R gets
/// one record per key; S's records are shuffled so that hot keys are not
/// physically clustered.
pub fn materialize(
    device: DeviceRef,
    counts: &[u64],
    record_bytes: usize,
    mcv_count: usize,
    seed: u64,
) -> nocap_storage::Result<GeneratedWorkload> {
    let payload = record_bytes.saturating_sub(RecordLayout::KEY_BYTES);
    let layout = RecordLayout::new(payload);
    let page_size = 4096;

    let r = Relation::bulk_load(
        device.clone(),
        layout,
        page_size,
        (0..counts.len() as u64).map(|k| Record::with_fill(k, payload, 1)),
    )?;

    let mut s_keys: Vec<u64> = Vec::with_capacity(counts.iter().sum::<u64>() as usize);
    for (key, &count) in counts.iter().enumerate() {
        for _ in 0..count {
            s_keys.push(key as u64);
        }
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A_DEAD_BEEF);
    s_keys.shuffle(&mut rng);
    let s = Relation::bulk_load(
        device,
        layout,
        page_size,
        s_keys.iter().map(|&k| Record::with_fill(k, payload, 2)),
    )?;

    let ct = CorrelationTable::from_counts(counts.iter().copied());
    let mcvs = extract_mcvs(&ct, mcv_count);
    Ok(GeneratedWorkload { r, s, ct, mcvs })
}

/// Generates the §5.1 synthetic workload.
pub fn generate(
    device: DeviceRef,
    config: &SyntheticConfig,
) -> nocap_storage::Result<GeneratedWorkload> {
    let counts = correlation_counts(config);
    materialize(
        device,
        &counts,
        config.record_bytes,
        config.mcv_count,
        config.seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocap_storage::SimDevice;

    fn config(correlation: Correlation) -> SyntheticConfig {
        SyntheticConfig {
            n_r: 2_000,
            n_s: 16_000,
            record_bytes: 64,
            correlation,
            mcv_count: 100,
            seed: 7,
        }
    }

    #[test]
    fn uniform_counts_are_flat_and_sum_to_n_s() {
        let cfg = config(Correlation::Uniform);
        let counts = correlation_counts(&cfg);
        assert_eq!(counts.len(), 2_000);
        assert_eq!(counts.iter().sum::<u64>() as usize, 16_000);
        assert!(counts.iter().all(|&c| c == 8));
    }

    #[test]
    fn zipf_counts_sum_to_n_s_and_are_skewed() {
        let cfg = config(Correlation::Zipf { alpha: 1.0 });
        let counts = correlation_counts(&cfg);
        assert_eq!(counts.iter().sum::<u64>() as usize, 16_000);
        let max = *counts.iter().max().unwrap();
        let mean = 16_000 / 2_000;
        assert!(
            max > 20 * mean,
            "Zipf(1.0) should have a very hot head (max={max})"
        );
    }

    #[test]
    fn materialized_relations_match_the_counts() {
        let device = SimDevice::new_ref();
        let cfg = config(Correlation::Zipf { alpha: 0.7 });
        let wl = generate(device, &cfg).unwrap();
        assert_eq!(wl.r.num_records(), 2_000);
        assert_eq!(wl.s.num_records(), 16_000);
        assert_eq!(wl.ct.total_matches(), 16_000);
        // Spot-check: the number of S records carrying the hottest key equals
        // that key's CT entry.
        let (hot_key, hot_count) = wl.mcvs[0];
        let actual =
            wl.s.read_all()
                .unwrap()
                .iter()
                .filter(|rec| rec.key() == hot_key)
                .count() as u64;
        assert_eq!(actual, hot_count);
    }

    #[test]
    fn mcvs_are_sorted_descending_and_limited() {
        let device = SimDevice::new_ref();
        let wl = generate(device, &config(Correlation::Zipf { alpha: 1.3 })).unwrap();
        assert_eq!(wl.mcvs.len(), 100);
        assert!(wl.mcvs.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = correlation_counts(&config(Correlation::Zipf { alpha: 1.0 }));
        let b = correlation_counts(&config(Correlation::Zipf { alpha: 1.0 }));
        assert_eq!(a, b);
    }

    #[test]
    fn record_size_is_respected() {
        let device = SimDevice::new_ref();
        let mut cfg = config(Correlation::Uniform);
        cfg.record_bytes = 128;
        let wl = generate(device, &cfg).unwrap();
        assert_eq!(wl.layout().record_bytes(), 128);
        // 4 KB page → 31 records of 128 bytes (after the 4-byte header).
        assert_eq!(wl.r.records_per_page(), 31);
    }
}
