//! Figure 9: latency under a *limited* memory budget (a narrow sweep just
//! below and around √(F·‖R‖)), uniform and Zipf(1.0) correlations.
//!
//! This is where NOCAP's rounded hash pays off even without skew: GHJ/DHH's
//! uniform partitioning produces partitions slightly larger than a chunk and
//! pays a full extra pass, while rounded hash keeps most partitions
//! chunk-aligned.

use nocap_bench::harness::{print_series_block, run_algorithms, AlgorithmSet};
use nocap_model::JoinSpec;
use nocap_storage::{DeviceProfile, SimDevice};
use nocap_workload::{synthetic, Correlation, SyntheticConfig};

fn main() {
    let n_r = 20_000usize;
    let n_s = 160_000usize;
    let record_bytes = 256usize;
    let device_profile = DeviceProfile::osync_off();

    for (name, correlation) in [
        ("uniform", Correlation::Uniform),
        ("zipf_1.0", Correlation::Zipf { alpha: 1.0 }),
    ] {
        let device = SimDevice::new_ref();
        let config = SyntheticConfig {
            n_r,
            n_s,
            record_bytes,
            correlation,
            mcv_count: n_r / 20,
            seed: 0x0CA9,
        };
        let workload = synthetic::generate(device, &config).expect("workload");
        let pages_r = JoinSpec::paper_synthetic(record_bytes, 64).pages_r(n_r);
        let sqrt_r = ((pages_r as f64) * 1.02_f64).sqrt().ceil() as usize;

        // The paper sweeps 128–512 pages for ‖R‖ = 250K (√ ≈ 505); keep the
        // same ratio: from ~0.4·√ to ~1.4·√ in even steps.
        let budgets: Vec<usize> = (0..7)
            .map(|i| ((0.4 + 0.17 * i as f64) * sqrt_r as f64).round() as usize)
            .collect();

        let series = ["NOCAP", "DHH", "Histojoin", "GHJ", "SMJ"];
        let mut io_rows = Vec::new();
        let mut lat_rows = Vec::new();
        for &budget in &budgets {
            let spec = JoinSpec::paper_synthetic(record_bytes, budget);
            let results = run_algorithms(&workload, &spec, &device_profile, &AlgorithmSet::all());
            let lookup = |n: &str| results.iter().find(|m| m.algorithm == n);
            io_rows.push((
                budget.to_string(),
                series
                    .iter()
                    .map(|&s| lookup(s).map(|m| m.ios as f64))
                    .collect(),
            ));
            lat_rows.push((
                budget.to_string(),
                series
                    .iter()
                    .map(|&s| lookup(s).map(|m| m.total_latency_secs))
                    .collect(),
            ));
        }
        print_series_block(
            &format!("Figure 9 — correlation = {name}: #I/Os under limited memory"),
            "buffer_pages",
            &series,
            &io_rows,
        );
        print_series_block(
            &format!("Figure 9 — correlation = {name}: latency (s) under limited memory"),
            "buffer_pages",
            &series,
            &lat_rows,
        );
    }
}
