//! Modeled-vs-observed I/O audit on a real `FileDevice`.
//!
//! Runs one NOCAP, one DHH and one SMJ join on a temporary-directory
//! `FileDevice` (the block layer: handle cache, read-ahead, write-behind)
//! wrapped in a latency-measuring `TracedDevice`, replays the captured
//! device-level event stream through `IoAudit`, and:
//!
//! * asserts the **model audit** is exact — every marker window's folded
//!   event counts equal the engine's own `IoStats` snapshot deltas, with no
//!   events outside the windows;
//! * prints the **declaration audit** (declared `IoKind` vs observed access
//!   pattern per phase) and fails on any flagged contradiction;
//! * prints the measured-vs-modeled **latency table** with the empirical
//!   μ/τ asymmetries of this container's filesystem, and each phase's model
//!   error under the `osync_off` profile;
//! * reruns NOCAP under `SyncPolicy::Sync` vs `SyncPolicy::None` and joins
//!   the two measured latency tables into a **sync comparison** against the
//!   `osync_on` / `osync_off` analytic profiles — the measured on/off cost
//!   ratio per I/O kind next to the ratio the paper's device model assumes;
//! * writes the combined audits to `BENCH_io.json` (`--out <path>` to
//!   relocate), the checked-in record of how far the analytic device model
//!   sits from a real device here.
//!
//! Pass `--quick` for a smaller workload (the CI smoke setting).

use nocap::{NocapConfig, NocapJoin};
use nocap_joins::{DhhJoin, SortMergeJoin};
use nocap_model::{JoinRunReport, JoinSpec};
use nocap_obs::{IoAudit, Obs, SyncComparison};
use nocap_storage::{DeviceProfile, FileDevice, SyncPolicy, TracedDevice};
use nocap_workload::{synthetic, Correlation, SyntheticConfig};

/// Replays a recorded run's device-level event stream through [`IoAudit`],
/// prints the report and asserts the model and declaration audits are exact.
fn audited(name: &str, report: &JoinRunReport, profile: DeviceProfile) -> IoAudit {
    let trace = report.trace.as_ref().expect("recording attaches a trace");
    let audit = IoAudit::from_trace(trace, profile);
    println!("# ---- {name} ----");
    for line in audit.report_text().lines() {
        println!("#   {line}");
    }
    assert!(
        audit.mismatches().is_empty(),
        "{name}: traced events disagree with the engine's modeled I/O"
    );
    assert_eq!(audit.leading_events, 0, "{name}: events before any marker");
    assert_eq!(
        audit.trailing_events, 0,
        "{name}: events after the last marker"
    );
    assert!(
        audit.flagged_declarations().is_empty(),
        "{name}: declared I/O kinds contradict the observed access patterns"
    );
    audit
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let out = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "BENCH_io.json".to_string())
    };
    let (n_r, n_s) = if quick {
        (6_000, 48_000)
    } else {
        (20_000, 160_000)
    };
    let record_bytes = 128;
    let buffer_pages = 48;
    let threads = 4;
    let profile = DeviceProfile::osync_off();
    let wl_config = SyntheticConfig {
        n_r,
        n_s,
        record_bytes,
        correlation: Correlation::Zipf { alpha: 1.1 },
        mcv_count: n_r / 20,
        seed: 0x10AD,
    };
    let spec = JoinSpec::paper_synthetic(record_bytes, buffer_pages);
    let nocap = NocapJoin::new(spec, NocapConfig::default());
    let dhh = DhhJoin::with_defaults(spec);
    let smj = SortMergeJoin::new(spec);

    println!(
        "# exp_io_audit: n_R = {n_r}, n_S = {n_s}, {record_bytes}-byte records, \
         B = {buffer_pages} pages, {threads} workers, FileDevice (temp dir)"
    );

    // A real device behind a latency-measuring tracer: every page access is
    // timed around the actual syscalls (or the write-behind buffer insert —
    // the block layer coalesces appends into one pwrite per block).
    let file_device = FileDevice::builder().build_arc().expect("temp FileDevice");
    println!("# device dir: {}", file_device.dir().display());
    let device = TracedDevice::with_latency_ref(file_device.clone());

    let workload = synthetic::generate(device.clone(), &wl_config).expect("workload generation");
    device.reset_stats();

    let audit_run = |name: &str, run: &dyn Fn(&Obs) -> JoinRunReport| -> (String, IoAudit) {
        device.reset_stats();
        let obs = Obs::recording();
        let report = run(&obs);
        assert_eq!(
            report.output_records,
            workload.expected_join_output(),
            "{name}: wrong join output"
        );
        (name.to_string(), audited(name, &report, profile))
    };

    let audits = [
        audit_run("NOCAP", &|obs| {
            nocap
                .run_parallel_obs(&workload.r, &workload.s, &workload.mcvs, threads, obs)
                .expect("NOCAP run")
        }),
        audit_run("DHH", &|obs| {
            dhh.run_parallel_obs(&workload.r, &workload.s, &workload.mcvs, threads, obs)
                .expect("DHH run")
        }),
        audit_run("SMJ", &|obs| {
            smj.run_parallel_obs(&workload.r, &workload.s, threads, obs)
                .expect("SMJ run")
        }),
    ];

    // ---- O_SYNC on vs off: measured latency tables ---------------------
    // Two fresh block-layer devices differing only in durability policy:
    // `SyncPolicy::None` (audited against the osync_off profile) and
    // `SyncPolicy::Sync` (fsync per physical write batch, audited against
    // osync_on). The joined table puts the measured on/off latency ratio
    // per I/O kind next to the ratio the analytic profiles assume.
    let sync_run = |policy: SyncPolicy, profile: DeviceProfile| -> IoAudit {
        let fdev = FileDevice::builder()
            .sync_policy(policy)
            .build_arc()
            .expect("sync-policy FileDevice");
        let device = TracedDevice::with_latency_ref(fdev.clone());
        let workload = synthetic::generate(device.clone(), &wl_config).expect("workload");
        device.reset_stats();
        let obs = Obs::recording();
        let report = nocap
            .run_parallel_obs(&workload.r, &workload.s, &workload.mcvs, threads, &obs)
            .expect("sync-comparison NOCAP run");
        assert_eq!(report.output_records, workload.expected_join_output());
        let syncs = fdev.block_stats().syncs;
        match policy {
            SyncPolicy::None => assert_eq!(syncs, 0, "SyncPolicy::None must not sync"),
            _ => assert!(syncs > 0, "durable policies must issue sync syscalls"),
        }
        println!(
            "# sync policy {}: {} sync syscall(s) across generation + run",
            policy.label(),
            syncs
        );
        audited(&format!("NOCAP / SyncPolicy::{policy:?}"), &report, profile)
    };
    let off_audit = sync_run(SyncPolicy::None, DeviceProfile::osync_off());
    let on_audit = sync_run(SyncPolicy::Sync, DeviceProfile::osync_on());
    let comparison = SyncComparison::between(&off_audit, &on_audit);
    println!("# ---- O_SYNC on vs off ----");
    for line in comparison.report_text().lines() {
        println!("#   {line}");
    }

    // ---- BENCH_io.json -------------------------------------------------
    let mut json = String::from("{\n");
    json.push_str(&format!(
        " \"config\": {{\n  \"device\": \"FileDevice\",\n  \"n_r\": {n_r},\n  \"n_s\": {n_s},\n  \
         \"record_bytes\": {record_bytes},\n  \"buffer_pages\": {buffer_pages},\n  \
         \"threads\": {threads},\n  \"quick\": {quick}\n }},\n"
    ));
    for (name, audit) in audits.iter() {
        json.push_str(&format!(
            " \"{}\": {},\n",
            name.to_lowercase(),
            audit.to_json()
        ));
    }
    json.push_str(&format!(" \"sync_comparison\": {}\n", comparison.to_json()));
    json.push_str("}\n");
    std::fs::write(&out, json).expect("write BENCH_io.json");
    println!("# wrote {out}");
    println!("# model audit exact for NOCAP, DHH and SMJ: every traced window matches the engine");
}
