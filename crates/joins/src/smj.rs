//! Sort-Merge Join (SMJ).
//!
//! Both relations are externally sorted by the join key; as in the paper,
//! the final merge pass is fused with the join itself: sorting stops as soon
//! as each relation's runs fit the shared merge fan-in, and a k-way merge
//! over the runs of R and S drives the join directly. Run files are written
//! sequentially (τ-weighted) and the fused merge reads runs with random
//! reads — this is why the paper observes SMJ matching GHJ's #I/Os but
//! losing slightly on latency.

use std::time::Instant;

use nocap_model::{JoinRunReport, JoinSpec};
use nocap_storage::sort::MergeIterator;
use nocap_storage::{ExternalSorter, Record, Relation};

/// Sort-Merge Join executor.
#[derive(Debug, Clone, Copy)]
pub struct SortMergeJoin {
    spec: JoinSpec,
}

impl SortMergeJoin {
    /// Creates an SMJ operator with the given spec.
    pub fn new(spec: JoinSpec) -> Self {
        SortMergeJoin { spec }
    }

    /// Executes `r ⋈ s`.
    pub fn run(&self, r: &Relation, s: &Relation) -> nocap_storage::Result<JoinRunReport> {
        let spec = &self.spec;
        let device = r.device().clone();
        let started = Instant::now();
        let base = device.stats();

        // Split the merge fan-in between the two inputs proportionally to
        // their sizes so that all final runs can be merged together.
        let budget = spec.buffer_pages.max(4);
        let fan_in = (budget - 1).max(4);
        let total_pages = (r.num_pages() + s.num_pages()).max(1);
        let r_share = ((fan_in * r.num_pages()) / total_pages).clamp(2, fan_in - 2);
        let s_share = (fan_in - r_share).max(2);

        let mut r_sorter = ExternalSorter::new(device.clone(), budget);
        let r_runs = r_sorter.sort_to_runs(r, r_share)?;
        let mut s_sorter = ExternalSorter::new(device.clone(), budget);
        let s_runs = s_sorter.sort_to_runs(s, s_share)?;
        let partition_io = device.stats().since(&base);

        // Fused final merge + join.
        let probe_base = device.stats();
        let mut r_merge = MergeIterator::new(&r_runs.runs)?.peekable();
        let mut s_merge = MergeIterator::new(&s_runs.runs)?.peekable();
        let mut output = 0u64;

        // Standard merge join supporting duplicate keys on both sides.
        let mut s_group: Vec<Record> = Vec::new();
        let mut s_group_key: Option<u64> = None;
        'outer: loop {
            let r_rec = match r_merge.next() {
                Some(rec) => rec?,
                None => break 'outer,
            };
            let key = r_rec.key();
            // Reuse the buffered S group if it is for the same key (multiple
            // R records with one key).
            if s_group_key != Some(key) {
                s_group.clear();
                // Advance S until its key ≥ R's key.
                loop {
                    match s_merge.peek() {
                        Some(Ok(s_rec)) if s_rec.key() < key => {
                            s_merge.next();
                        }
                        Some(Err(_)) => {
                            // Surface the error.
                            s_merge.next().transpose()?;
                        }
                        _ => break,
                    }
                }
                // Collect all S records equal to the key.
                loop {
                    match s_merge.peek() {
                        Some(Ok(s_rec)) if s_rec.key() == key => {
                            s_group.push(s_merge.next().expect("peeked")?);
                        }
                        Some(Err(_)) => {
                            s_merge.next().transpose()?;
                        }
                        _ => break,
                    }
                }
                s_group_key = Some(key);
            }
            output += s_group.len() as u64;
        }
        let probe_io = device.stats().since(&probe_base);

        for run in r_runs.runs.into_iter().chain(s_runs.runs) {
            run.delete()?;
        }

        let mut report = JoinRunReport::new("SMJ");
        report.output_records = output;
        report.partition_io = partition_io;
        report.probe_io = probe_io;
        report.cpu_seconds = started.elapsed().as_secs_f64();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_join_count;
    use crate::testutil::build_workload;
    use nocap_storage::SimDevice;

    #[test]
    fn matches_naive_join_uniform() {
        let dev = SimDevice::new_ref();
        let spec = JoinSpec::paper_synthetic(128, 24);
        let counts = |_k: u64| 3u64;
        let (r, s) = build_workload(dev.clone(), &spec, 1_500, counts);
        let expected = naive_join_count(&r, &s).unwrap();
        dev.reset_stats();
        let report = SortMergeJoin::new(spec).run(&r, &s).unwrap();
        assert_eq!(report.output_records, expected);
    }

    #[test]
    fn matches_naive_join_skewed() {
        let dev = SimDevice::new_ref();
        let spec = JoinSpec::paper_synthetic(128, 16);
        let counts = |k: u64| if k.is_multiple_of(100) { 80 } else { 1 };
        let (r, s) = build_workload(dev.clone(), &spec, 2_000, counts);
        let expected = naive_join_count(&r, &s).unwrap();
        dev.reset_stats();
        let report = SortMergeJoin::new(spec).run(&r, &s).unwrap();
        assert_eq!(report.output_records, expected);
    }

    #[test]
    fn run_generation_writes_sequentially_and_merge_reads_randomly() {
        let dev = SimDevice::new_ref();
        let spec = JoinSpec::paper_synthetic(256, 16);
        let counts = |_k: u64| 2u64;
        let (r, s) = build_workload(dev.clone(), &spec, 3_000, counts);
        dev.reset_stats();
        let report = SortMergeJoin::new(spec).run(&r, &s).unwrap();
        assert!(
            report.partition_io.seq_writes > 0,
            "runs are written sequentially"
        );
        assert_eq!(report.partition_io.rand_writes, 0);
        assert!(
            report.probe_io.rand_reads > 0,
            "the fused merge reads runs randomly"
        );
        assert_eq!(report.probe_io.writes(), 0, "the fused merge never writes");
    }

    #[test]
    fn no_sort_needed_when_memory_is_large() {
        let dev = SimDevice::new_ref();
        let spec = JoinSpec::paper_synthetic(128, 2_048);
        let counts = |_k: u64| 1u64;
        let (r, s) = build_workload(dev.clone(), &spec, 1_000, counts);
        dev.reset_stats();
        let report = SortMergeJoin::new(spec).run(&r, &s).unwrap();
        assert_eq!(report.output_records, 1_000);
        // Each relation is read once for run generation and its single run is
        // read once for the merge.
        assert!(report.total_io().reads() as usize >= r.num_pages() + s.num_pages());
    }
}
