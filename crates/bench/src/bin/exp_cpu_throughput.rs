//! CPU-throughput trajectory of the record pipeline, recorded across PRs.
//!
//! Measures records/sec for two kernels on `SimDevice` (modeled I/O is
//! free, so this is pure CPU):
//!
//! * **build_probe** — load R into the in-memory hash table, probe it with
//!   every S record (throughput over `n_R + n_S` records);
//! * **partition_sweep** — one hash-route-and-copy pass over S into 64
//!   spill partitions (throughput over `n_S` records).
//!
//! Each kernel runs both as the current zero-copy implementation and as a
//! faithful reproduction of the pre-refactor path (`Record::read_from` per
//! record + `HashMap<u64, Vec<Record>>` / owned-record pushes — see
//! `nocap_bench::cpu`), so the printed speedups measure the arena refactor
//! directly. Results are written to `BENCH_cpu.json` in the working
//! directory so the perf trajectory is tracked across PRs. Pass `--quick`
//! for a smaller workload (CI smoke).

use std::time::Instant;

use nocap_bench::cpu;
use nocap_storage::SimDevice;

/// Best-of-N wall-clock seconds for one kernel run.
fn best_secs(repeats: usize, mut f: impl FnMut() -> u64) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut result = 0u64;
    for _ in 0..repeats {
        let started = Instant::now();
        result = std::hint::black_box(f());
        best = best.min(started.elapsed().as_secs_f64());
    }
    (best, result)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n_r, n_s, repeats) = if quick {
        (10_000usize, 40_000usize, 2usize)
    } else {
        (100_000, 400_000, 5)
    };
    let record_bytes = 128;
    let partitions = 64;

    println!(
        "# exp_cpu_throughput: n_R = {n_r}, n_S = {n_s}, {record_bytes}-byte records, \
         {partitions} partitions, best of {repeats} runs"
    );

    let device = SimDevice::new_ref();
    let (r, s) =
        cpu::build_input(device, n_r, n_s, record_bytes, 4096).expect("workload generation");

    // ---- build + probe ---------------------------------------------------
    let bp_records = (n_r + n_s) as f64;
    let (legacy_secs, legacy_out) = best_secs(repeats, || cpu::build_probe_legacy(&r, &s).unwrap());
    let (fast_secs, fast_out) = best_secs(repeats, || cpu::build_probe_zero_copy(&r, &s).unwrap());
    assert_eq!(
        fast_out, legacy_out,
        "kernels must agree on the join output"
    );
    let bp_legacy = bp_records / legacy_secs;
    let bp_fast = bp_records / fast_secs;
    let bp_speedup = bp_fast / bp_legacy;

    // ---- partition sweep -------------------------------------------------
    let (sweep_legacy_secs, _) = best_secs(repeats, || {
        cpu::partition_sweep_legacy(&s, partitions).unwrap()
    });
    let (sweep_fast_secs, _) = best_secs(repeats, || {
        cpu::partition_sweep_zero_copy(&s, partitions).unwrap()
    });
    let sweep_legacy = n_s as f64 / sweep_legacy_secs;
    let sweep_fast = n_s as f64 / sweep_fast_secs;
    let sweep_speedup = sweep_fast / sweep_legacy;

    println!("kernel,legacy_records_per_sec,zero_copy_records_per_sec,speedup");
    println!("build_probe,{bp_legacy:.0},{bp_fast:.0},{bp_speedup:.2}");
    println!("partition_sweep,{sweep_legacy:.0},{sweep_fast:.0},{sweep_speedup:.2}");

    let json = format!(
        "{{\n  \"config\": {{ \"n_r\": {n_r}, \"n_s\": {n_s}, \"record_bytes\": {record_bytes}, \
         \"partitions\": {partitions}, \"repeats\": {repeats}, \"quick\": {quick} }},\n  \
         \"build_probe\": {{ \"legacy_records_per_sec\": {bp_legacy:.0}, \
         \"zero_copy_records_per_sec\": {bp_fast:.0}, \"speedup\": {bp_speedup:.3} }},\n  \
         \"partition_sweep\": {{ \"legacy_records_per_sec\": {sweep_legacy:.0}, \
         \"zero_copy_records_per_sec\": {sweep_fast:.0}, \"speedup\": {sweep_speedup:.3} }}\n}}\n"
    );
    std::fs::write("BENCH_cpu.json", &json).expect("write BENCH_cpu.json");
    println!("# wrote BENCH_cpu.json");
}
