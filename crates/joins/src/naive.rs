//! In-memory reference join used as the correctness oracle in tests.
//!
//! Reads both relations fully into memory and counts matching pairs with a
//! hash map. It ignores the memory budget entirely and is therefore *not* a
//! storage-based join — it exists so every other executor can be checked
//! against an implementation whose correctness is obvious.

use std::collections::HashMap;

use nocap_storage::Relation;

/// Number of output tuples of `r ⋈ s` on the join key.
pub fn naive_join_count(r: &Relation, s: &Relation) -> nocap_storage::Result<u64> {
    let mut r_counts: HashMap<u64, u64> = HashMap::new();
    for rec in r.scan() {
        *r_counts.entry(rec?.key()).or_insert(0) += 1;
    }
    let mut output = 0u64;
    for rec in s.scan() {
        if let Some(&c) = r_counts.get(&rec?.key()) {
            output += c;
        }
    }
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocap_storage::{Record, RecordLayout, Relation, SimDevice};

    fn relation(keys: &[u64]) -> Relation {
        let dev = SimDevice::new_ref();
        Relation::bulk_load(
            dev,
            RecordLayout::new(8),
            4096,
            keys.iter().map(|&k| Record::with_fill(k, 8, 0)),
        )
        .unwrap()
    }

    #[test]
    fn counts_pkfk_matches() {
        let r = relation(&[1, 2, 3]);
        let s = relation(&[1, 1, 2, 9]);
        assert_eq!(naive_join_count(&r, &s).unwrap(), 3);
    }

    #[test]
    fn counts_many_to_many_matches() {
        let r = relation(&[7, 7]);
        let s = relation(&[7, 7, 7]);
        assert_eq!(naive_join_count(&r, &s).unwrap(), 6);
    }

    #[test]
    fn empty_inputs_join_to_nothing() {
        let r = relation(&[]);
        let s = relation(&[1, 2]);
        assert_eq!(naive_join_count(&r, &s).unwrap(), 0);
        assert_eq!(naive_join_count(&s, &r).unwrap(), 0);
    }
}
