//! `g_DHH`: estimated extra I/O of joining the residual keys with a
//! DHH/GHJ-style partitioner under a given memory budget.
//!
//! The NOCAP planner (Algorithm 10) splits the keys into three groups:
//! cached in memory (`K_mem`), designated disk partitions (`K_disk`) and the
//! rest (`K_rest`), which is handed to an ordinary dynamic-hybrid-hash
//! partitioner with whatever pages are left (`m_rest`). To choose the split,
//! the planner needs an estimate of how much that residual join will cost —
//! this module provides it.
//!
//! The estimate counts only I/Os *beyond* the unavoidable single scan of both
//! inputs (the same convention the planner uses for its other terms):
//!
//! * spilled R pages are written (μ) and read back once (1),
//! * spilled S pages are written (μ) and read back once per probe pass,
//! * the fraction of data that can stay staged in memory pays nothing.

use crate::spec::JoinSpec;

/// Estimated extra normalized I/O of joining `n_rest` residual R records
/// (matching `s_rest` S records in total) with a DHH-style partitioner that
/// may use `m_rest` buffer pages.
///
/// Returns 0 when the residual build side fits in memory entirely.
pub fn g_dhh(n_rest: usize, s_rest: u64, spec: &JoinSpec, m_rest: usize) -> f64 {
    if n_rest == 0 {
        return 0.0;
    }
    let r_pages = spec.pages_r(n_rest) as f64;
    let s_pages = (s_rest as usize).div_ceil(spec.b_s().max(1)) as f64;

    // Whole residual build side fits in an in-memory hash table → the join
    // happens on the fly while scanning, no extra I/O.
    let ht_pages = spec.hash_table_pages(n_rest);
    if m_rest >= ht_pages + 2 {
        return 0.0;
    }
    if m_rest < 4 {
        // Not even enough memory to partition: degenerate to block nested
        // loops over the residual data.
        let chunks = (r_pages * spec.fudge / (m_rest.max(3) - 2) as f64).ceil();
        return chunks * s_pages;
    }

    // DHH partition-count heuristic applied to the residual keys with the
    // residual budget.
    let m_part_formula = ((r_pages * spec.fudge - m_rest as f64) / (m_rest as f64 - 1.0)).ceil();
    let m_part = (m_part_formula.max(1.0) as usize)
        .max(20)
        .min(m_rest.saturating_sub(3).max(1));

    // Pages that can stay staged in memory while partitioning.
    let staged_pages = m_rest.saturating_sub(2 + m_part) as f64;
    let spill_frac = (1.0 - staged_pages / (r_pages * spec.fudge)).clamp(0.0, 1.0);

    let spilled_r = spill_frac * r_pages;
    let spilled_s = spill_frac * s_pages;

    // Probe passes per spilled partition. After partitioning the full budget
    // is available again for the per-partition hash table.
    let part_r_pages = spilled_r / m_part as f64;
    let probe_capacity = (spec.buffer_pages.saturating_sub(2)) as f64 / spec.fudge;
    let passes = if probe_capacity < 1.0 {
        part_r_pages.max(1.0)
    } else {
        (part_r_pages / probe_capacity).ceil().max(1.0)
    };

    let mu = spec.mu();
    (1.0 + mu) * spilled_r + mu * spilled_s + passes * spilled_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::JoinSpec;

    fn spec(buffer_pages: usize) -> JoinSpec {
        JoinSpec::paper_synthetic(1024, buffer_pages)
    }

    #[test]
    fn zero_rest_keys_cost_nothing() {
        assert_eq!(g_dhh(0, 0, &spec(128), 64), 0.0);
    }

    #[test]
    fn in_memory_rest_costs_nothing() {
        let s = spec(1024);
        // 1000 records ≈ 334 pages; hash table ≈ 341 pages < 1000-page rest
        // budget.
        assert_eq!(g_dhh(1000, 8000, &s, 400), 0.0);
    }

    #[test]
    fn cost_grows_as_rest_budget_shrinks() {
        let s = spec(512);
        let n_rest = 100_000;
        let s_rest = 800_000u64;
        let large = g_dhh(n_rest, s_rest, &s, 400);
        let medium = g_dhh(n_rest, s_rest, &s, 128);
        let small = g_dhh(n_rest, s_rest, &s, 32);
        assert!(large <= medium);
        assert!(medium <= small);
        assert!(small > 0.0);
    }

    #[test]
    fn cost_grows_with_data_size() {
        let s = spec(256);
        let a = g_dhh(50_000, 400_000, &s, 128);
        let b = g_dhh(200_000, 1_600_000, &s, 128);
        assert!(b > a);
    }

    #[test]
    fn spill_cost_reflects_write_asymmetry() {
        let cheap_writes = spec(256);
        let expensive_writes = spec(256).with_device(nocap_storage::DeviceProfile::ssd_sync());
        let a = g_dhh(100_000, 800_000, &cheap_writes, 64);
        let b = g_dhh(100_000, 800_000, &expensive_writes, 64);
        assert!(b > a, "higher μ must increase the estimated spill cost");
    }

    #[test]
    fn degenerate_budget_still_returns_finite_cost() {
        let s = spec(64);
        let cost = g_dhh(10_000, 80_000, &s, 3);
        assert!(cost.is_finite());
        assert!(cost > 0.0);
    }
}
