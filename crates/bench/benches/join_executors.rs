//! Criterion benchmark: end-to-end executor comparison on a small skewed
//! workload (a micro version of Figure 8's latency panels).
//!
//! The workload is deliberately small (2 K × 16 K records) so that
//! `cargo bench` completes quickly; the full-scale sweeps live in the
//! `exp_fig*` binaries.

use criterion::{criterion_group, criterion_main, Criterion};

use nocap::{NocapConfig, NocapJoin};
use nocap_joins::{DhhConfig, DhhJoin, GraceHashJoin, SortMergeJoin};
use nocap_model::JoinSpec;
use nocap_storage::SimDevice;
use nocap_workload::{synthetic, Correlation, SyntheticConfig};

fn workload() -> (nocap_workload::GeneratedWorkload, JoinSpec) {
    let device = SimDevice::new_ref();
    let config = SyntheticConfig {
        n_r: 2_000,
        n_s: 16_000,
        record_bytes: 128,
        correlation: Correlation::Zipf { alpha: 1.0 },
        mcv_count: 100,
        seed: 99,
    };
    let wl = synthetic::generate(device, &config).expect("workload");
    let spec = JoinSpec::paper_synthetic(128, 64);
    (wl, spec)
}

fn bench_executors(c: &mut Criterion) {
    let (wl, spec) = workload();
    let mut group = c.benchmark_group("join_executors");
    group.sample_size(10);
    group.bench_function("nocap", |b| {
        b.iter(|| {
            wl.r.device().reset_stats();
            NocapJoin::new(spec, NocapConfig::default())
                .run(&wl.r, &wl.s, &wl.mcvs)
                .unwrap()
                .output_records
        })
    });
    group.bench_function("dhh", |b| {
        b.iter(|| {
            wl.r.device().reset_stats();
            DhhJoin::new(spec, DhhConfig::default())
                .run(&wl.r, &wl.s, &wl.mcvs)
                .unwrap()
                .output_records
        })
    });
    group.bench_function("ghj", |b| {
        b.iter(|| {
            wl.r.device().reset_stats();
            GraceHashJoin::new(spec)
                .run(&wl.r, &wl.s)
                .unwrap()
                .output_records
        })
    });
    group.bench_function("smj", |b| {
        b.iter(|| {
            wl.r.device().reset_stats();
            SortMergeJoin::new(spec)
                .run(&wl.r, &wl.s)
                .unwrap()
                .output_records
        })
    });
    group.finish();
}

criterion_group!(benches, bench_executors);
criterion_main!(benches);
