//! The NOCAP executor: hybrid partitioning (Algorithms 8 and 9) plus the
//! partition-wise probe phase.
//!
//! Execution follows the plan produced by [`crate::planner::plan_nocap`]:
//!
//! 1. **Partition R** — each R record is routed by key: cached keys go into
//!    the in-memory hash table, designated keys go to their dedicated spill
//!    partition, and everything else enters the [`RestPartitioner`], a
//!    DHH-style partitioner that stages partitions in memory and destages a
//!    partition once its staged footprint exceeds its fixed quota of the
//!    residual budget (see [`RestGeometry`] — the quota policy is what
//!    makes sequential and parallel execution produce identical I/O).
//!    Residual routing uses the rounded hash of §4.2.
//! 2. **Partition / probe S** — S records with designated keys are spilled
//!    to the matching S partition; the rest first probe the in-memory hash
//!    table (producing output immediately) and, on a miss, are spilled only
//!    if their residual partition was destaged (the POB bit of DHH).
//! 3. **Probe phase** — every spilled (R, S) partition pair is joined with
//!    the chunk-wise NBJ of [`nocap_model::pairwise`].
//!
//! All pages are drawn from a [`BufferPool`] capped at the spec's budget, so
//! the §4.1 memory breakdown is enforced at run time, not just assumed.

use nocap_model::pairwise::smart_partition_join;
use nocap_model::{
    BudgetLadder, DegradedRun, JoinRunReport, JoinSpec, ProbeBloom, RoundedHashParams,
};
use nocap_obs::{Obs, Phase};
use nocap_par::QuotaStager;
use nocap_stats::{StatsCollector, StatsSummary};
use nocap_storage::{
    BufferPool, IoKind, JoinHashTable, PartitionHandle, PartitionWriter, RadixRouter, RecordBatch,
    RecordLayout, RecordRef, Relation, SpillGuard,
};

use crate::plan::NocapPlan;
use crate::planner::{plan_nocap, PlannerConfig};
use crate::rounded_hash::RoundedHash;

/// Configuration of the NOCAP executor.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NocapConfig {
    /// Planner configuration (grid resolution, rounded-hash parameters).
    pub planner: PlannerConfig,
    /// Probe-side Bloom pre-filter over the in-memory build table (§6 SIP;
    /// on by default, a pure CPU optimization — output and modeled I/O are
    /// identical with the filter on or off).
    pub bloom: ProbeBloom,
}

/// The NOCAP join operator.
#[derive(Debug, Clone, Copy)]
pub struct NocapJoin {
    spec: JoinSpec,
    config: NocapConfig,
}

impl NocapJoin {
    /// Creates a NOCAP join operator for the given spec.
    pub fn new(spec: JoinSpec, config: NocapConfig) -> Self {
        NocapJoin { spec, config }
    }

    /// The join spec this operator was built with.
    pub fn spec(&self) -> &JoinSpec {
        &self.spec
    }

    /// The executor configuration this operator was built with.
    pub fn config(&self) -> &NocapConfig {
        &self.config
    }

    /// Plans and executes the join of `r ⋈ s` given MCV statistics.
    pub fn run(
        &self,
        r: &Relation,
        s: &Relation,
        mcvs: &[(u64, u64)],
    ) -> nocap_storage::Result<JoinRunReport> {
        self.run_obs(r, s, mcvs, &Obs::off())
    }

    /// [`run`](Self::run) with observability: phase spans, skew histograms
    /// and counters land in the report's `trace` when `obs` is recording.
    /// The plan is computed before any clock is read — time flows only into
    /// the obs channel, never into planning or execution decisions.
    pub fn run_obs(
        &self,
        r: &Relation,
        s: &Relation,
        mcvs: &[(u64, u64)],
        obs: &Obs,
    ) -> nocap_storage::Result<JoinRunReport> {
        let plan = plan_nocap(
            mcvs,
            r.num_records(),
            s.num_records() as u64,
            &self.spec,
            &self.config.planner,
        );
        self.run_with_plan_obs(r, s, &plan, obs)
    }

    /// Plans and executes the join purely from a one-pass sketch summary —
    /// no `CorrelationTable` oracle anywhere on this path.
    ///
    /// The summary's planner statistics stand in for the exact top-k MCVs
    /// and its exact stream length stands in for `n_S`. On skewed streams
    /// those statistics are the SpaceSaving counts; on near-uniform streams
    /// [`StatsSummary::planner_mcvs`] substitutes equi-width histogram
    /// masses, whose per-key estimates are unbiased where SpaceSaving is
    /// noise-dominated. This is the deployable configuration: everything
    /// the planner consumes was produced by `nocap-stats` sketches within a
    /// bounded page budget.
    pub fn run_with_collected_stats(
        &self,
        r: &Relation,
        s: &Relation,
        stats: &StatsSummary,
    ) -> nocap_storage::Result<JoinRunReport> {
        self.run_with_collected_stats_obs(r, s, stats, &Obs::off())
    }

    /// The observed variant of
    /// [`run_with_collected_stats`](Self::run_with_collected_stats).
    pub fn run_with_collected_stats_obs(
        &self,
        r: &Relation,
        s: &Relation,
        stats: &StatsSummary,
        obs: &Obs,
    ) -> nocap_storage::Result<JoinRunReport> {
        let mcvs = stats.planner_mcvs();
        let plan = plan_nocap(
            &mcvs,
            r.num_records(),
            stats.stream_len(),
            &self.spec,
            &self.config.planner,
        );
        self.run_with_plan_obs(r, s, &plan, obs)
    }

    /// The fully self-contained path: scans S once to collect sketch
    /// statistics (charged against the spec's buffer budget), then plans
    /// and executes from that summary alone.
    ///
    /// Collection runs through the sharded deterministic collector
    /// ([`StatsCollector::collect_parallel_with_budget`]) at one thread, so
    /// this is exactly the `threads = 1` instance of
    /// [`collect_and_run_parallel`](Self::collect_and_run_parallel): the
    /// whole sketch-plan-execute pipeline produces identical output, plans
    /// and per-phase I/O at every thread count. `stats_pages` is the
    /// per-shard-collector budget; the fixed
    /// [`STATS_SHARDS`](nocap_stats::STATS_SHARDS)-way shard geometry
    /// multiplies the resident charge (determinism fixes the number of
    /// sketch sets by the data, not by the worker count).
    ///
    /// The extra sequential scan of S shows up in the device's I/O trace —
    /// statistics are not free, and experiments that account for them should
    /// use this entry point. Requesting more statistics memory than the
    /// spec's buffer budget can hold fails with
    /// [`OutOfMemory`](nocap_storage::StorageError::OutOfMemory) rather than
    /// being silently clamped.
    pub fn collect_and_run(
        &self,
        r: &Relation,
        s: &Relation,
        stats_pages: usize,
    ) -> nocap_storage::Result<JoinRunReport> {
        self.collect_and_run_obs(r, s, stats_pages, &Obs::off())
    }

    /// The observed variant of [`collect_and_run`](Self::collect_and_run):
    /// the sketch pass shows up as a `stats` phase span alongside the join's
    /// own phases.
    pub fn collect_and_run_obs(
        &self,
        r: &Relation,
        s: &Relation,
        stats_pages: usize,
        obs: &Obs,
    ) -> nocap_storage::Result<JoinRunReport> {
        // Attach before the sketch pass so stats-phase reads land in the
        // same I/O trace as the join; the inner attach in `run_with_plan_obs`
        // nests onto this one.
        let _io_trace = obs.attach_io(s.device());
        let pool = BufferPool::new(self.spec.buffer_pages);
        let summary = StatsCollector::collect_parallel_with_budget_obs(
            &pool,
            stats_pages,
            self.spec.page_size,
            s,
            1,
            obs,
        )?;
        drop(pool);
        self.run_with_collected_stats_obs(r, s, &summary, obs)
    }

    /// [`run`](Self::run) with graceful degradation: when `admission`
    /// cannot grant the spec's budget — or planning/execution fails with
    /// [`OutOfMemory`](nocap_storage::StorageError::OutOfMemory) — the
    /// budget walks down the [`BudgetLadder`] (`B → ¾B → …`) and the join
    /// is re-planned at the smaller budget, trading passes for memory
    /// instead of failing. Every step is recorded in the returned
    /// [`DegradedRun`] and, when `obs` records, in the trace counters
    /// `degradation_steps` / `degraded_budget_pages`.
    pub fn run_degrading(
        &self,
        r: &Relation,
        s: &Relation,
        mcvs: &[(u64, u64)],
        admission: &BufferPool,
        ladder: &BudgetLadder,
    ) -> nocap_storage::Result<DegradedRun> {
        self.run_degrading_obs(r, s, mcvs, admission, ladder, &Obs::off())
    }

    /// The observed variant of [`run_degrading`](Self::run_degrading).
    pub fn run_degrading_obs(
        &self,
        r: &Relation,
        s: &Relation,
        mcvs: &[(u64, u64)],
        admission: &BufferPool,
        ladder: &BudgetLadder,
        obs: &Obs,
    ) -> nocap_storage::Result<DegradedRun> {
        nocap_model::run_degrading(admission, self.spec.buffer_pages, ladder, obs, |budget| {
            // Re-plan at the degraded budget: a smaller B designates fewer
            // keys and spills more, but the plan stays feasible.
            let degraded = NocapJoin::new(self.spec.with_buffer_pages(budget), self.config);
            degraded.run_obs(r, s, mcvs, obs)
        })
    }

    /// Executes the join with an explicit, pre-computed plan.
    pub fn run_with_plan(
        &self,
        r: &Relation,
        s: &Relation,
        plan: &NocapPlan,
    ) -> nocap_storage::Result<JoinRunReport> {
        self.run_with_plan_obs(r, s, plan, &Obs::off())
    }

    /// [`run_with_plan`](Self::run_with_plan) with observability. The
    /// recorder is strictly passive: partition routing, destaging and the
    /// probe order are fixed by the plan and the data, so an observed run
    /// produces bit-identical output and modeled I/O to a blind one.
    pub fn run_with_plan_obs(
        &self,
        r: &Relation,
        s: &Relation,
        plan: &NocapPlan,
        obs: &Obs,
    ) -> nocap_storage::Result<JoinRunReport> {
        let spec = &self.spec;
        let device = r.device().clone();
        let _io_trace = obs.attach_io(&device);
        let pool = BufferPool::new(spec.buffer_pages);
        // One page streams the input, one buffers the join output.
        let _io_pages = pool.reserve(2)?;
        let _fixed = pool.reserve(plan.fixed_memory_pages(spec).min(pool.available()))?;
        let rest_budget = pool.available();
        // The probe-side bloom filter is reserved only after the residual
        // budget is read, so partition geometry and quotas never shift; an
        // exhausted pool skips the filter instead of failing.
        let bloom_reservation = self.config.bloom.reserve(&pool);

        let timer = obs.run_timer();
        let base_stats = device.stats();
        // Every spill handle is adopted here the moment it is finished, so
        // an error anywhere below — partitioning, probing, a faulted device
        // — deletes all spill files on unwind. The guard also replaces the
        // old success-path delete loops (deletion is not modeled I/O, so
        // end-of-scope timing is equivalent).
        let mut spill_guard = SpillGuard::new();

        let mem_set = plan.mem_key_set();
        let disk_map = plan.disk_map();
        let m_disk = plan.num_designated();

        // ---- Phase 1: partition R (Algorithm 8) --------------------------
        let mut ht_mem = JoinHashTable::new(r.layout(), spec.page_size, spec.fudge);
        let mut r_disk_writers: Vec<PartitionWriter> = (0..m_disk)
            .map(|_| {
                PartitionWriter::new(
                    device.clone(),
                    r.layout(),
                    spec.page_size,
                    IoKind::RandWrite,
                )
            })
            .collect();
        let mut rest = RestPartitioner::new(
            device.clone(),
            *spec,
            r.layout(),
            rest_budget,
            plan.estimated_rest_keys,
            self.config.planner.rh_params,
        );
        let r_partition_span = obs.span(Phase::Partition);
        let mut r_scan = r.scan();
        while let Some(page) = r_scan.next_page()? {
            for rec in page.record_refs() {
                if mem_set.contains(&rec.key()) {
                    ht_mem.insert_ref(rec);
                } else if let Some(&pid) = disk_map.get(&rec.key()) {
                    r_disk_writers[pid as usize].push_ref(rec)?;
                } else {
                    rest.insert(rec)?;
                }
            }
        }
        drop(r_partition_span);
        let spill_span = obs.span(Phase::Spill);
        let rest_build = rest.finish_build()?;
        spill_guard.adopt_all(rest_build.spilled.iter().flatten().cloned());
        let r_disk_handles: Vec<PartitionHandle> = r_disk_writers
            .into_iter()
            .map(|w| {
                let h = w.finish()?;
                spill_guard.adopt(h.clone());
                Ok(h)
            })
            .collect::<nocap_storage::Result<_>>()?;
        drop(spill_span);
        {
            let _build_span = obs.span(Phase::Build);
            for rec in rest_build.staged_records.iter() {
                ht_mem.insert_ref(rec);
            }
        }
        // The build side is complete: freeze the table into its vectorized
        // probe layout and summarize its keys for the probe pre-filter.
        ht_mem.seal();
        let bloom = self
            .config
            .bloom
            .build(&ht_mem, &bloom_reservation, spec.page_size);

        // ---- Phase 2: partition / probe S (Algorithm 9) -------------------
        let mut output = 0u64;
        let mut s_disk_writers: Vec<PartitionWriter> = (0..m_disk)
            .map(|_| {
                PartitionWriter::new(
                    device.clone(),
                    s.layout(),
                    spec.page_size,
                    IoKind::RandWrite,
                )
            })
            .collect();
        let mut s_rest_writers: Vec<Option<PartitionWriter>> = rest_build
            .pob
            .iter()
            .map(|&spilled| {
                spilled.then(|| {
                    PartitionWriter::new(
                        device.clone(),
                        s.layout(),
                        spec.page_size,
                        IoKind::RandWrite,
                    )
                })
            })
            .collect();
        let s_partition_span = obs.span(Phase::Partition);
        let mut s_scan = s.scan();
        while let Some(page) = s_scan.next_page()? {
            for rec in page.record_refs() {
                if let Some(&pid) = disk_map.get(&rec.key()) {
                    s_disk_writers[pid as usize].push_ref(rec)?;
                    continue;
                }
                // A bloom-negative key takes exactly the `matches == 0`
                // route (the filter has no false negatives), so routing and
                // modeled I/O are identical with the filter on or off.
                let matches = if bloom.as_ref().is_none_or(|b| b.may_contain(rec.key())) {
                    ht_mem.probe_count(rec.key())
                } else {
                    0
                };
                if matches > 0 {
                    output += matches;
                    continue;
                }
                let part = rest_build.rh.partition_of(rec.key());
                if rest_build.pob[part] {
                    s_rest_writers[part]
                        .as_mut()
                        .expect("writer exists for every destaged partition")
                        .push_ref(rec)?;
                }
                // else: the partition stayed in memory and the key had no
                // match.
            }
        }
        drop(s_partition_span);
        let partition_io = device.stats().since(&base_stats);
        record_partition_skew(
            obs,
            &r_disk_handles,
            rest_build.spilled.iter().flatten(),
            rest_build.pob.len(),
        );

        // ---- Phase 3: partition-wise joins of everything spilled ----------
        let probe_base = device.stats();
        let probe_span = obs.span(Phase::Probe);
        let s_disk_handles: Vec<PartitionHandle> = s_disk_writers
            .into_iter()
            .map(|w| {
                let h = w.finish()?;
                spill_guard.adopt(h.clone());
                Ok(h)
            })
            .collect::<nocap_storage::Result<_>>()?;
        for (r_part, s_part) in r_disk_handles.iter().zip(s_disk_handles.iter()) {
            output += smart_partition_join(r_part, s_part, spec, 1)?;
        }
        for (idx, maybe_r) in rest_build.spilled.iter().enumerate() {
            let Some(r_part) = maybe_r else { continue };
            let Some(s_writer) = s_rest_writers[idx].take() else {
                continue;
            };
            let s_part = s_writer.finish()?;
            spill_guard.adopt(s_part.clone());
            output += smart_partition_join(r_part, &s_part, spec, 1)?;
        }
        drop(probe_span);
        let probe_io = device.stats().since(&probe_base);

        // Dropping the guard deletes every spill file (not counted as I/O).
        drop(spill_guard);

        obs.gauge_max("buffer_pool_peak_pages", pool.peak() as u64);
        let mut report = JoinRunReport::new("NOCAP");
        report.output_records = output;
        report.partition_io = partition_io;
        report.probe_io = probe_io;
        report.finish_run(timer, obs);
        Ok(report)
    }
}

/// Records the partition-fan-out skew histograms and counters shared by the
/// sequential and parallel NOCAP executors: per-spilled-partition record and
/// page counts (designated partitions first, then destaged residuals) plus
/// the partition-census counters the breakdown tables report.
pub(crate) fn record_partition_skew<'a>(
    obs: &Obs,
    designated: &'a [PartitionHandle],
    spilled_rest: impl Iterator<Item = &'a PartitionHandle> + Clone,
    rest_partitions: usize,
) {
    if !obs.is_recording() {
        return;
    }
    let handles = || designated.iter().chain(spilled_rest.clone());
    obs.values("partition_records", handles().map(|h| h.records() as u64));
    obs.values("partition_pages", handles().map(|h| h.pages() as u64));
    obs.count("designated_partitions", designated.len() as u64);
    obs.count("rest_partitions", rest_partitions as u64);
    obs.count("spilled_rest_partitions", spilled_rest.count() as u64);
}

/// What the residual partitioner hands back after the R pass.
pub struct RestBuild {
    /// Records of partitions that stayed in memory (to be added to the
    /// in-memory hash table), held in one columnar arena.
    pub staged_records: RecordBatch,
    /// Spilled R partitions, indexed by partition id (`None` if that
    /// partition stayed in memory).
    pub spilled: Vec<Option<PartitionHandle>>,
    /// Page-out bits: `true` if the partition was destaged to disk.
    pub pob: Vec<bool>,
    /// The router used for R, reused verbatim for S.
    pub rh: RoundedHash,
}

/// Geometry of the residual partitioner, shared verbatim by the sequential
/// [`RestPartitioner`] and the parallel executor
/// ([`NocapJoin::run_parallel`](crate::exec_par)): partition count, the
/// rounded-hash router and the per-partition staging quotas. Deriving both
/// paths from one struct is what makes their partition contents — and
/// therefore their I/O traces — identical by construction.
#[derive(Debug, Clone)]
pub struct RestGeometry {
    /// The rounded-hash router over the residual partitions.
    pub rh: RoundedHash,
    /// Per-partition staging quotas in pages; they sum to the residual
    /// budget (see [`nocap_par::even_caps`]).
    pub caps: Vec<usize>,
}

impl RestGeometry {
    /// Sizes the residual partitioner: the partition count targets one NBJ
    /// chunk (`c*_R`) per partition, clamped so that every partition can own
    /// at least one page of the residual budget.
    pub fn new(
        spec: &JoinSpec,
        budget_pages: usize,
        estimated_keys: usize,
        rh_params: RoundedHashParams,
    ) -> Self {
        let budget_pages = budget_pages.max(1);
        let c_star = rh_params.effective_chunk(spec.c_r().max(1));
        let desired_partitions = estimated_keys.div_ceil(c_star.max(1)).max(1);
        let num_partitions = desired_partitions.min(budget_pages.saturating_sub(1).max(1));
        let rh = RoundedHash::new(estimated_keys, num_partitions, spec.c_r(), &rh_params);
        RestGeometry {
            rh,
            caps: nocap_par::even_caps(budget_pages, num_partitions),
        }
    }

    /// Number of residual partitions.
    pub fn num_partitions(&self) -> usize {
        self.caps.len()
    }
}

/// Quota-destaging partitioner for the residual (non-MCV) keys: the
/// rounded-hash router of [`RestGeometry`] in front of the shared
/// sequential [`QuotaStager`].
///
/// Partitions start staged in memory. Each partition owns a fixed quota of
/// staging pages carved from the residual budget ([`RestGeometry`]); the
/// moment a partition's staged footprint exceeds its quota it is destaged
/// to disk (its POB bit is set) and its memory is reused — every later
/// record of that partition streams through the spill writer's single
/// output-buffer page.
///
/// This replaces the earlier "destage the largest partition when the global
/// budget overflows" policy of §2.2. The global policy's outcome depends on
/// the order records arrive, which no sharded scan can reproduce; the quota
/// policy destages partition `p` iff `hash_table_pages(n_p) > cap_p` — a
/// function of the partition's total record count only — so the sequential
/// and parallel executors destage identical partition sets and the §4.1
/// bound `Σ staged + spilled buffers ≤ m_rest` still holds at all times.
pub struct RestPartitioner {
    geometry: RestGeometry,
    stager: QuotaStager,
    /// Cache-line-sized per-partition write buffers in front of the stager:
    /// records batch up per partition and flush in runs, keeping the hot
    /// routing loop inside a few cache lines. Per-partition arrival order is
    /// preserved, so staged contents are byte-identical to direct pushes.
    router: RadixRouter,
}

impl RestPartitioner {
    /// Creates a residual partitioner with `budget_pages` pages of memory and
    /// an estimate of how many distinct residual keys will arrive (used to
    /// size the rounded hash).
    pub fn new(
        device: nocap_storage::device::DeviceRef,
        spec: JoinSpec,
        layout: RecordLayout,
        budget_pages: usize,
        estimated_keys: usize,
        rh_params: RoundedHashParams,
    ) -> Self {
        let geometry = RestGeometry::new(&spec, budget_pages, estimated_keys, rh_params);
        Self::with_geometry(device, spec, layout, geometry)
    }

    /// Creates a residual partitioner from an explicit geometry.
    pub fn with_geometry(
        device: nocap_storage::device::DeviceRef,
        spec: JoinSpec,
        layout: RecordLayout,
        geometry: RestGeometry,
    ) -> Self {
        let router = RadixRouter::new(layout, geometry.num_partitions());
        let stager = QuotaStager::new(device, spec, layout, geometry.caps.clone());
        RestPartitioner {
            geometry,
            stager,
            router,
        }
    }

    /// Number of residual partitions.
    pub fn num_partitions(&self) -> usize {
        self.stager.num_partitions()
    }

    /// Number of partitions destaged to disk so far.
    pub fn spilled_partitions(&self) -> usize {
        self.stager.spilled_partitions()
    }

    /// Current memory use in pages (staged data + spilled output buffers).
    pub fn pages_in_use(&self) -> usize {
        self.stager.pages_in_use()
    }

    /// Routes one borrowed R record to its residual partition (staging is a
    /// key push plus payload `memcpy` into the partition's arena).
    pub fn insert(&mut self, rec: RecordRef<'_>) -> nocap_storage::Result<()> {
        let p = self.geometry.rh.partition_of(rec.key());
        let stager = &mut self.stager;
        self.router.push(p, rec, &mut |p, r| stager.insert(p, r))
    }

    /// Finishes the R pass: remaining staged records go to the caller's
    /// in-memory hash table, spilled partitions become handles.
    pub fn finish_build(mut self) -> nocap_storage::Result<RestBuild> {
        let stager = &mut self.stager;
        self.router.finish(&mut |p, r| stager.insert(p, r))?;
        let build = self.stager.finish()?;
        Ok(RestBuild {
            staged_records: build.staged_records,
            spilled: build.spilled,
            pob: build.pob,
            rh: self.geometry.rh,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocap_storage::{Record, SimDevice};
    use std::collections::HashMap;

    /// Builds R with keys `0..n_r` and S where key `k` appears `ct(k)` times.
    fn build_workload(
        device: nocap_storage::device::DeviceRef,
        spec: &JoinSpec,
        n_r: u64,
        counts: impl Fn(u64) -> u64,
    ) -> (Relation, Relation, Vec<(u64, u64)>) {
        let payload = spec.r_layout.payload_bytes();
        let r = Relation::bulk_load(
            device.clone(),
            spec.r_layout,
            spec.page_size,
            (0..n_r).map(|k| Record::with_fill(k, payload, 1)),
        )
        .unwrap();
        // Interleave S keys so hot keys are not clustered.
        let mut s_keys: Vec<u64> = Vec::new();
        for k in 0..n_r {
            for _ in 0..counts(k) {
                s_keys.push(k);
            }
        }
        // Deterministic shuffle.
        let salt = s_keys.len() as u64;
        s_keys.sort_by_key(|&k| crate::rounded_hash::mix_key(k.wrapping_add(salt)));
        let s = Relation::bulk_load(
            device.clone(),
            spec.s_layout,
            spec.page_size,
            s_keys.iter().map(|&k| Record::with_fill(k, payload, 2)),
        )
        .unwrap();
        let mut mcv: Vec<(u64, u64)> = (0..n_r).map(|k| (k, counts(k))).collect();
        mcv.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
        mcv.truncate((n_r as usize / 20).max(10));
        (r, s, mcv)
    }

    fn expected_output(n_r: u64, counts: impl Fn(u64) -> u64) -> u64 {
        (0..n_r).map(counts).sum()
    }

    #[test]
    fn rest_partitioner_respects_its_budget() {
        let device = SimDevice::new_ref();
        let spec = JoinSpec::paper_synthetic(128, 16);
        let mut rest = RestPartitioner::new(
            device.clone(),
            spec,
            spec.r_layout,
            8,
            5_000,
            RoundedHashParams::default(),
        );
        for k in 0..5_000u64 {
            let rec = Record::with_fill(k, 120, 0);
            rest.insert(rec.as_record_ref()).unwrap();
            assert!(
                rest.pages_in_use() <= 8,
                "rest partitioner exceeded its page budget"
            );
        }
        assert!(
            rest.spilled_partitions() > 0,
            "a 5K-record build cannot stay in 8 pages"
        );
        let build = rest.finish_build().unwrap();
        let spilled_records: usize = build.spilled.iter().flatten().map(|h| h.records()).sum();
        assert_eq!(spilled_records + build.staged_records.len(), 5_000);
    }

    #[test]
    fn rest_partitioner_stays_in_memory_when_budget_allows() {
        let device = SimDevice::new_ref();
        let spec = JoinSpec::paper_synthetic(128, 256);
        let mut rest = RestPartitioner::new(
            device.clone(),
            spec,
            spec.r_layout,
            200,
            1_000,
            RoundedHashParams::default(),
        );
        for k in 0..1_000u64 {
            let rec = Record::with_fill(k, 120, 0);
            rest.insert(rec.as_record_ref()).unwrap();
        }
        assert_eq!(rest.spilled_partitions(), 0);
        let build = rest.finish_build().unwrap();
        assert_eq!(build.staged_records.len(), 1_000);
        assert_eq!(
            device.stats().writes(),
            0,
            "nothing should have been written"
        );
    }

    #[test]
    fn nocap_join_is_correct_on_a_skewed_workload() {
        let device = SimDevice::new_ref();
        let spec = JoinSpec::paper_synthetic(128, 64);
        let counts = |k: u64| if k < 5 { 200 } else { 2 };
        let (r, s, mcvs) = build_workload(device.clone(), &spec, 2_000, counts);
        device.reset_stats();
        let join = NocapJoin::new(spec, NocapConfig::default());
        let report = join.run(&r, &s, &mcvs).unwrap();
        assert_eq!(report.output_records, expected_output(2_000, counts));
        assert!(report.total_ios() > 0);
    }

    #[test]
    fn nocap_join_is_correct_on_a_uniform_workload() {
        let device = SimDevice::new_ref();
        let spec = JoinSpec::paper_synthetic(128, 48);
        let counts = |_k: u64| 4u64;
        let (r, s, mcvs) = build_workload(device.clone(), &spec, 3_000, counts);
        device.reset_stats();
        let join = NocapJoin::new(spec, NocapConfig::default());
        let report = join.run(&r, &s, &mcvs).unwrap();
        assert_eq!(report.output_records, expected_output(3_000, counts));
    }

    #[test]
    fn large_memory_joins_entirely_in_memory() {
        let device = SimDevice::new_ref();
        // Budget big enough that R fits into the residual partitioner.
        let spec = JoinSpec::paper_synthetic(128, 512);
        let counts = |k: u64| (k % 3) + 1;
        let (r, s, mcvs) = build_workload(device.clone(), &spec, 2_000, counts);
        device.reset_stats();
        let join = NocapJoin::new(spec, NocapConfig::default());
        let report = join.run(&r, &s, &mcvs).unwrap();
        assert_eq!(report.output_records, expected_output(2_000, counts));
        // Only the base scans: no spill writes at all.
        assert_eq!(report.total_io().writes(), 0);
        assert_eq!(
            report.total_io().reads() as usize,
            r.num_pages() + s.num_pages()
        );
    }

    #[test]
    fn smaller_memory_never_means_fewer_ios() {
        let device = SimDevice::new_ref();
        let counts = |k: u64| if k < 20 { 100 } else { 3 };
        let spec_small = JoinSpec::paper_synthetic(128, 24);
        let (r, s, mcvs) = build_workload(device.clone(), &spec_small, 4_000, counts);
        let mut previous = u64::MAX;
        for budget in [24usize, 48, 96, 192, 2_048] {
            let spec = spec_small.with_buffer_pages(budget);
            device.reset_stats();
            let join = NocapJoin::new(spec, NocapConfig::default());
            let report = join.run(&r, &s, &mcvs).unwrap();
            assert_eq!(report.output_records, expected_output(4_000, counts));
            assert!(
                report.total_ios() <= previous,
                "more memory should not increase NOCAP's I/O (budget={budget})"
            );
            previous = report.total_ios();
        }
    }

    #[test]
    fn run_degrading_trades_memory_for_passes_under_admission_pressure() {
        use nocap_model::BudgetLadder;
        let device = SimDevice::new_ref();
        let spec = JoinSpec::paper_synthetic(128, 64);
        let counts = |k: u64| if k < 5 { 150 } else { 2 };
        let (r, s, mcvs) = build_workload(device.clone(), &spec, 2_000, counts);
        let join = NocapJoin::new(spec, NocapConfig::default());

        // Roomy admission: first-try success, same result as a plain run.
        let roomy = nocap_storage::BufferPool::new(256);
        let run = join
            .run_degrading(&r, &s, &mcvs, &roomy, &BudgetLadder::default())
            .unwrap();
        assert_eq!(run.steps(), 0);
        assert_eq!(run.budget_pages, 64);
        assert_eq!(run.report.output_records, expected_output(2_000, counts));
        assert_eq!(roomy.in_use(), 0);

        // Tight admission (37 pages): 64 and 48 are rejected, 36 runs.
        let tight = nocap_storage::BufferPool::new(37);
        let degraded = join
            .run_degrading(&r, &s, &mcvs, &tight, &BudgetLadder::default())
            .unwrap();
        assert_eq!(degraded.budget_pages, 36);
        assert_eq!(degraded.steps(), 2);
        assert_eq!(
            degraded.report.output_records,
            expected_output(2_000, counts),
            "a degraded run is still correct"
        );
        assert!(
            degraded.report.total_ios() >= run.report.total_ios(),
            "less memory can never mean less I/O"
        );
        assert_eq!(tight.in_use(), 0);

        // Admission below the ladder floor: a clean error, nothing leaked.
        let hopeless = nocap_storage::BufferPool::new(2);
        let err = join
            .run_degrading(&r, &s, &mcvs, &hopeless, &BudgetLadder::default())
            .expect_err("the floor cannot be granted");
        assert!(matches!(
            err,
            nocap_storage::StorageError::OutOfMemory { .. }
        ));
        assert_eq!(hopeless.in_use(), 0);
    }

    #[test]
    fn output_counts_match_a_reference_hash_join() {
        // Cross-check against a straightforward in-memory join.
        let device = SimDevice::new_ref();
        let spec = JoinSpec::paper_synthetic(128, 32);
        let counts = |k: u64| (crate::rounded_hash::mix_key(k) % 7).max(1);
        let (r, s, mcvs) = build_workload(device.clone(), &spec, 1_500, counts);
        let mut reference: HashMap<u64, u64> = HashMap::new();
        for rec in r.read_all().unwrap() {
            *reference.entry(rec.key()).or_insert(0) += 0;
        }
        let mut expected = 0u64;
        for rec in s.read_all().unwrap() {
            if reference.contains_key(&rec.key()) {
                expected += 1;
            }
        }
        device.reset_stats();
        let join = NocapJoin::new(spec, NocapConfig::default());
        let report = join.run(&r, &s, &mcvs).unwrap();
        assert_eq!(report.output_records, expected);
    }
}
