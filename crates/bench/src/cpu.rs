//! CPU-throughput kernels: the zero-copy hot paths next to their
//! pre-refactor (allocation-heavy) counterparts.
//!
//! The NOCAP cost model separates I/O from CPU; on `SimDevice` the I/O is
//! free, so these kernels measure exactly the CPU work the zero-copy record
//! pipeline optimizes: partition routing (hash + buffer copy per record)
//! and hash-table build/probe. The *legacy* kernels reproduce the
//! pre-refactor implementation faithfully — `Record::read_from` per scanned
//! record (one `Box<[u8]>` each) feeding a `HashMap<u64, Vec<Record>>`
//! (SipHash, one `Vec` per key) or an owned-record `PartitionWriter::push`
//! — so `exp_cpu_throughput` can report the speedup against the exact code
//! the repository shipped before the arena refactor.
//!
//! Shared by the `join_throughput` criterion bench and the
//! `exp_cpu_throughput` experiment binary (which emits `BENCH_cpu.json`).

use std::collections::HashMap;

use nocap_storage::device::DeviceRef;
use nocap_storage::{
    IoKind, JoinHashTable, PartitionWriter, Record, RecordLayout, Relation, Result,
};

/// The paper's fudge factor, used by every kernel.
pub const FUDGE: f64 = 1.02;

/// The pre-refactor build/probe structure: SipHash map keyed by join key
/// with one owned-record `Vec` per key.
pub struct LegacyHashTable {
    map: HashMap<u64, Vec<Record>>,
}

impl Default for LegacyHashTable {
    fn default() -> Self {
        Self::new()
    }
}

impl LegacyHashTable {
    /// Creates an empty legacy table.
    pub fn new() -> Self {
        LegacyHashTable {
            map: HashMap::new(),
        }
    }

    /// Inserts an owned record (allocation already paid by the caller).
    pub fn insert(&mut self, record: Record) {
        self.map.entry(record.key()).or_default().push(record);
    }

    /// All records whose key equals `key`.
    pub fn probe(&self, key: u64) -> &[Record] {
        self.map.get(&key).map(|v| v.as_slice()).unwrap_or(&[])
    }
}

/// Builds the kernel workload: R with keys `0..n_r`, S with `n_s` records
/// whose keys cycle through R's domain in a deterministically shuffled
/// order. Returns `(r, s)` on the given device.
pub fn build_input(
    device: DeviceRef,
    n_r: usize,
    n_s: usize,
    record_bytes: usize,
    page_size: usize,
) -> Result<(Relation, Relation)> {
    let layout = RecordLayout::new(record_bytes.saturating_sub(RecordLayout::KEY_BYTES));
    let payload = layout.payload_bytes();
    let r = Relation::bulk_load(
        device.clone(),
        layout,
        page_size,
        (0..n_r as u64).map(|k| Record::with_fill(k, payload, 1)),
    )?;
    let s = Relation::bulk_load(
        device,
        layout,
        page_size,
        (0..n_s as u64).map(|i| {
            // SplitMix-style scramble to avoid a sequential key stream.
            let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            Record::with_fill(z % n_r as u64, payload, 2)
        }),
    )?;
    Ok((r, s))
}

/// Zero-copy build + probe: R pages stream into the arena
/// [`JoinHashTable`] via `insert_ref`, S pages probe via `probe_count` —
/// no per-record allocation anywhere. Returns the join output count.
pub fn build_probe_zero_copy(r: &Relation, s: &Relation) -> Result<u64> {
    let mut table = JoinHashTable::new(r.layout(), r.page_size(), FUDGE);
    let mut r_scan = r.scan();
    while let Some(page) = r_scan.next_page()? {
        for rec in page.record_refs() {
            table.insert_ref(rec);
        }
    }
    let mut output = 0u64;
    let mut s_scan = s.scan();
    while let Some(page) = s_scan.next_page()? {
        for rec in page.record_refs() {
            output += table.probe_count(rec.key());
        }
    }
    Ok(output)
}

/// Pre-refactor build + probe: the owned-record iterator path
/// (`Record::read_from` per record) into a [`LegacyHashTable`].
pub fn build_probe_legacy(r: &Relation, s: &Relation) -> Result<u64> {
    let mut table = LegacyHashTable::new();
    for rec in r.scan() {
        table.insert(rec?);
    }
    let mut output = 0u64;
    for rec in s.scan() {
        output += table.probe(rec?.key()).len() as u64;
    }
    Ok(output)
}

/// Zero-copy one-pass partition sweep: routes every record of `relation`
/// into `m` spill partitions (hash, then `memcpy` into the partition's
/// output buffer). Returns the number of records routed; the spill files
/// are deleted before returning.
pub fn partition_sweep_zero_copy(relation: &Relation, m: usize) -> Result<u64> {
    let device = relation.device().clone();
    let mut writers: Vec<PartitionWriter> = (0..m)
        .map(|_| {
            PartitionWriter::new(
                device.clone(),
                relation.layout(),
                relation.page_size(),
                IoKind::RandWrite,
            )
        })
        .collect();
    let mut routed = 0u64;
    let mut scan = relation.scan();
    while let Some(page) = scan.next_page()? {
        for rec in page.record_refs() {
            let p = (rec.key().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % m;
            writers[p].push_ref(rec)?;
            routed += 1;
        }
    }
    for w in writers {
        w.finish()?.delete()?;
    }
    Ok(routed)
}

/// Pre-refactor partition sweep: the owned-record iterator path
/// (`Record::read_from` per record, `push(&Record)` per route).
pub fn partition_sweep_legacy(relation: &Relation, m: usize) -> Result<u64> {
    let device = relation.device().clone();
    let mut writers: Vec<PartitionWriter> = (0..m)
        .map(|_| {
            PartitionWriter::new(
                device.clone(),
                relation.layout(),
                relation.page_size(),
                IoKind::RandWrite,
            )
        })
        .collect();
    let mut routed = 0u64;
    for rec in relation.scan() {
        let rec = rec?;
        let p = (rec.key().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % m;
        writers[p].push(&rec)?;
        routed += 1;
    }
    for w in writers {
        w.finish()?.delete()?;
    }
    Ok(routed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocap_storage::SimDevice;

    #[test]
    fn zero_copy_and_legacy_kernels_agree() {
        let device = SimDevice::new_ref();
        let (r, s) = build_input(device, 2_000, 8_000, 64, 4096).unwrap();
        let fast = build_probe_zero_copy(&r, &s).unwrap();
        let slow = build_probe_legacy(&r, &s).unwrap();
        assert_eq!(fast, slow);
        assert_eq!(fast, 8_000, "every S key hits exactly one R key");
        let routed_fast = partition_sweep_zero_copy(&r, 16).unwrap();
        let routed_slow = partition_sweep_legacy(&r, 16).unwrap();
        assert_eq!(routed_fast, 2_000);
        assert_eq!(routed_slow, 2_000);
    }
}
