//! A strict page-budget buffer pool.
//!
//! The paper assumes each join operator gets a user-defined budget of *B*
//! pages (§4.1 "Enforcing Memory Constraints") and carefully accounts for
//! how those pages are split between the input page, the output page, the
//! in-memory hash table, partition output buffers and the skew-key
//! structures. The algorithms in this reproduction acquire every page they
//! use from a [`BufferPool`], so exceeding the budget is an observable error
//! rather than a silent modelling assumption.
//!
//! The pool only tracks *counts*; the actual page contents live wherever the
//! algorithm keeps them (hash tables, staging vectors, …). This matches how
//! the paper reasons about memory: in units of pages, inflated by the fudge
//! factor where appropriate.

use std::cell::RefCell;
use std::rc::Rc;

use crate::{Result, StorageError};

#[derive(Debug)]
struct PoolState {
    capacity: usize,
    in_use: usize,
    peak: usize,
}

/// A shared page-budget accountant.
#[derive(Debug, Clone)]
pub struct BufferPool {
    state: Rc<RefCell<PoolState>>,
}

impl BufferPool {
    /// Creates a pool with a budget of `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        BufferPool {
            state: Rc::new(RefCell::new(PoolState {
                capacity,
                in_use: 0,
                peak: 0,
            })),
        }
    }

    /// Total page budget (the paper's *B*).
    pub fn capacity(&self) -> usize {
        self.state.borrow().capacity
    }

    /// Pages currently reserved.
    pub fn in_use(&self) -> usize {
        self.state.borrow().in_use
    }

    /// Pages still available.
    pub fn available(&self) -> usize {
        let st = self.state.borrow();
        st.capacity - st.in_use
    }

    /// Highest number of pages that were ever simultaneously reserved.
    pub fn peak(&self) -> usize {
        self.state.borrow().peak
    }

    /// Reserves `pages` pages, failing if the budget would be exceeded.
    ///
    /// The returned [`Reservation`] releases the pages when dropped.
    pub fn reserve(&self, pages: usize) -> Result<Reservation> {
        {
            let mut st = self.state.borrow_mut();
            if st.in_use + pages > st.capacity {
                return Err(StorageError::OutOfMemory {
                    requested: pages,
                    available: st.capacity - st.in_use,
                });
            }
            st.in_use += pages;
            st.peak = st.peak.max(st.in_use);
        }
        Ok(Reservation {
            pool: self.clone(),
            pages,
        })
    }

    /// Reserves all currently available pages (possibly zero).
    pub fn reserve_remaining(&self) -> Reservation {
        let avail = self.available();
        self.reserve(avail)
            .expect("reserving exactly the available pages cannot fail")
    }

    fn release(&self, pages: usize) {
        let mut st = self.state.borrow_mut();
        debug_assert!(st.in_use >= pages, "released more pages than reserved");
        st.in_use -= pages.min(st.in_use);
    }
}

/// RAII guard for a number of reserved pages.
#[derive(Debug)]
pub struct Reservation {
    pool: BufferPool,
    pages: usize,
}

impl Reservation {
    /// Number of pages held by this reservation.
    pub fn pages(&self) -> usize {
        self.pages
    }

    /// Grows the reservation by `extra` pages, failing if the budget would be
    /// exceeded (the original reservation is unchanged on failure).
    pub fn grow(&mut self, extra: usize) -> Result<()> {
        let additional = self.pool.reserve(extra)?;
        // Absorb the new reservation into this one.
        self.pages += additional.pages;
        std::mem::forget(additional);
        Ok(())
    }

    /// Shrinks the reservation by `pages` pages (saturating at zero).
    pub fn shrink(&mut self, pages: usize) {
        let released = pages.min(self.pages);
        self.pool.release(released);
        self.pages -= released;
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        self.pool.release(self.pages);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release() {
        let pool = BufferPool::new(10);
        assert_eq!(pool.available(), 10);
        let r = pool.reserve(4).unwrap();
        assert_eq!(pool.in_use(), 4);
        assert_eq!(pool.available(), 6);
        drop(r);
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn over_reservation_fails_without_leaking() {
        let pool = BufferPool::new(5);
        let _a = pool.reserve(3).unwrap();
        let err = pool.reserve(3).unwrap_err();
        assert!(matches!(
            err,
            StorageError::OutOfMemory { available: 2, .. }
        ));
        assert_eq!(pool.in_use(), 3);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let pool = BufferPool::new(8);
        {
            let _a = pool.reserve(5).unwrap();
            let _b = pool.reserve(2).unwrap();
        }
        let _c = pool.reserve(1).unwrap();
        assert_eq!(pool.peak(), 7);
    }

    #[test]
    fn grow_and_shrink() {
        let pool = BufferPool::new(6);
        let mut r = pool.reserve(2).unwrap();
        r.grow(3).unwrap();
        assert_eq!(pool.in_use(), 5);
        assert_eq!(r.pages(), 5);
        assert!(r.grow(2).is_err());
        assert_eq!(pool.in_use(), 5, "failed grow must not change accounting");
        r.shrink(4);
        assert_eq!(pool.in_use(), 1);
        drop(r);
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn reserve_remaining_takes_everything() {
        let pool = BufferPool::new(7);
        let _a = pool.reserve(3).unwrap();
        let rest = pool.reserve_remaining();
        assert_eq!(rest.pages(), 4);
        assert_eq!(pool.available(), 0);
    }

    #[test]
    fn zero_page_reservation_is_fine() {
        let pool = BufferPool::new(0);
        let r = pool.reserve(0).unwrap();
        assert_eq!(r.pages(), 0);
        assert!(pool.reserve(1).is_err());
    }
}
