//! Explicit partitionings of the CT-sorted records and their join cost.
//!
//! §3.1.1 models a partitioning as a Boolean matrix P (equivalently a mapping
//! `f : record index → partition index` over the CT-sorted records) and
//! derives the per-partition join cost of running NBJ on every partition
//! pair:
//!
//! ```text
//! Join(P, m) = Σ_j  ⌈|P_j| / c_R⌉ · Σ_{i ∈ P_j} CT[i]        (record units)
//! CalCost(s, e) = (Σ_{i=s..e} CT[i]) · ⌈(e − s + 1) / c_R⌉    (Eq. 1)
//! ```
//!
//! Theorem 3.1 says an optimal partitioning can always be brought into a
//! canonical form: **consecutive** on the sorted CT, **weakly ordered** by
//! chunk count, and with all but the first partition **divisible** by `c_R`.
//! This module provides the cost function and checkers for those three
//! properties; the OCAP dynamic program in the `nocap` crate searches only
//! canonical partitionings and uses the checkers in its tests.

use crate::ct::CorrelationTable;

/// Per-partition join cost of assigning the CT-sorted records `[start, end)`
/// (0-based, half-open) to a single partition: Eq. (1) of the paper, in
/// *record* units (divide by `b_S` to convert to S pages).
pub fn cal_cost(ct: &CorrelationTable, start: usize, end: usize, c_r: usize) -> u128 {
    debug_assert!(c_r > 0, "chunk size must be positive");
    if start >= end {
        return 0;
    }
    let len = end - start;
    let passes = len.div_ceil(c_r) as u128;
    ct.range_sum(start, end) as u128 * passes
}

/// An assignment of the `n` CT-sorted records to `m` partitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    /// `assignment[i]` = partition index of the i-th CT-sorted record.
    assignment: Vec<u32>,
    /// Number of partitions.
    num_partitions: usize,
}

impl Partitioning {
    /// Builds a partitioning from an explicit per-record assignment.
    ///
    /// # Panics
    /// Panics if any entry is `>= num_partitions`.
    pub fn from_assignment(assignment: Vec<u32>, num_partitions: usize) -> Self {
        assert!(
            assignment.iter().all(|&p| (p as usize) < num_partitions),
            "assignment references a partition >= num_partitions"
        );
        Partitioning {
            assignment,
            num_partitions,
        }
    }

    /// Builds a *consecutive* partitioning from cut points.
    ///
    /// `boundaries` are the half-open end indices of each partition in
    /// ascending order; the last boundary must equal `n`. For example
    /// `boundaries = [4, 10]` over `n = 10` records yields partition 0 =
    /// records `[0,4)` and partition 1 = records `[4,10)`.
    pub fn from_boundaries(boundaries: &[usize], n: usize) -> Self {
        assert!(!boundaries.is_empty(), "need at least one partition");
        assert_eq!(
            *boundaries.last().unwrap(),
            n,
            "last boundary must cover all records"
        );
        let mut assignment = vec![0u32; n];
        let mut start = 0usize;
        for (p, &end) in boundaries.iter().enumerate() {
            assert!(end >= start, "boundaries must be non-decreasing");
            for slot in assignment.iter_mut().take(end).skip(start) {
                *slot = p as u32;
            }
            start = end;
        }
        Partitioning {
            assignment,
            num_partitions: boundaries.len(),
        }
    }

    /// Builds the uniform hash partitioning used by GHJ/DHH for comparison:
    /// record `i` goes to partition `hash(i) mod m`. A multiplicative hash is
    /// used so that the assignment is deterministic but uncorrelated with the
    /// CT order.
    pub fn uniform_hash(n: usize, m: usize) -> Self {
        assert!(m > 0);
        let assignment = (0..n)
            .map(|i| (((i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 17) % m as u64) as u32)
            .collect();
        Partitioning {
            assignment,
            num_partitions: m,
        }
    }

    /// Number of records covered.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Returns `true` if the partitioning covers no records.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Number of partitions (the paper's m).
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// Partition index of the i-th CT-sorted record.
    pub fn partition_of(&self, idx: usize) -> usize {
        self.assignment[idx] as usize
    }

    /// The full assignment vector.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Number of records in each partition (`|P_j|`).
    pub fn partition_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_partitions];
        for &p in &self.assignment {
            sizes[p as usize] += 1;
        }
        sizes
    }

    /// Sum of CT values per partition (`Σ_{i ∈ P_j} CT[i]`), i.e. the number
    /// of S records routed to each partition.
    pub fn partition_match_sums(&self, ct: &CorrelationTable) -> Vec<u64> {
        assert_eq!(ct.len(), self.len(), "CT and partitioning must align");
        let mut sums = vec![0u64; self.num_partitions];
        for (i, &p) in self.assignment.iter().enumerate() {
            sums[p as usize] += ct.count_at(i);
        }
        sums
    }

    /// The per-partition NBJ join cost `Join(P, m)` in record units
    /// (excluding the common `‖R‖ + ‖S‖` scan shared by every strategy).
    pub fn join_cost(&self, ct: &CorrelationTable, c_r: usize) -> u128 {
        assert!(c_r > 0);
        let sizes = self.partition_sizes();
        let sums = self.partition_match_sums(ct);
        sizes
            .iter()
            .zip(sums.iter())
            .map(|(&size, &sum)| {
                if size == 0 {
                    0
                } else {
                    sum as u128 * size.div_ceil(c_r) as u128
                }
            })
            .sum()
    }

    /// Number of chunk passes over S charged to the i-th CT-sorted record,
    /// `⌈|N_f(i)| / c_R⌉` — the quantity plotted in Figure 4.
    pub fn passes_per_record(&self, c_r: usize) -> Vec<usize> {
        let sizes = self.partition_sizes();
        self.assignment
            .iter()
            .map(|&p| sizes[p as usize].div_ceil(c_r))
            .collect()
    }

    /// Checks the **consecutive** property of Theorem 3.1: every partition
    /// occupies a contiguous range of the CT-sorted indices.
    pub fn is_consecutive(&self) -> bool {
        let mut seen_end: Vec<Option<usize>> = vec![None; self.num_partitions];
        let mut current: Option<u32> = None;
        for (i, &p) in self.assignment.iter().enumerate() {
            if current != Some(p) {
                // Entering partition p: it must not have been closed before.
                if seen_end[p as usize].is_some() {
                    return false;
                }
                if let Some(prev) = current {
                    seen_end[prev as usize] = Some(i);
                }
                current = Some(p);
            }
        }
        true
    }

    /// Checks the **weakly-ordered** property: partitions, in the order they
    /// appear on the sorted CT, have non-increasing chunk counts
    /// `⌈|P_j| / c_R⌉`.
    pub fn is_weakly_ordered(&self, c_r: usize) -> bool {
        assert!(c_r > 0);
        let sizes = self.partition_sizes();
        let mut order: Vec<usize> = Vec::new();
        let mut last: Option<u32> = None;
        for &p in &self.assignment {
            if last != Some(p) {
                order.push(p as usize);
                last = Some(p);
            }
        }
        order
            .windows(2)
            .all(|w| sizes[w[0]].div_ceil(c_r) >= sizes[w[1]].div_ceil(c_r))
    }

    /// Checks the **divisible** property: every partition except the first
    /// (in CT order) has a size divisible by `c_R`. Empty partitions are
    /// ignored.
    pub fn is_divisible(&self, c_r: usize) -> bool {
        assert!(c_r > 0);
        let sizes = self.partition_sizes();
        let mut order: Vec<usize> = Vec::new();
        let mut last: Option<u32> = None;
        for &p in &self.assignment {
            if last != Some(p) {
                order.push(p as usize);
                last = Some(p);
            }
        }
        order
            .iter()
            .skip(1)
            .all(|&p| sizes[p] == 0 || sizes[p].is_multiple_of(c_r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ct(counts: Vec<u64>) -> CorrelationTable {
        CorrelationTable::from_counts(counts)
    }

    #[test]
    fn cal_cost_matches_hand_computation() {
        let table = ct(vec![1, 2, 3, 4, 5, 6]); // sorted ascending already
                                                // Records [0,4) hold counts 1+2+3+4 = 10; with c_R = 2 that is 2 passes.
        assert_eq!(cal_cost(&table, 0, 4, 2), 20);
        // Single chunk: 1 pass.
        assert_eq!(cal_cost(&table, 0, 2, 10), 3);
        // Empty range costs nothing.
        assert_eq!(cal_cost(&table, 3, 3, 2), 0);
    }

    #[test]
    fn boundaries_partitioning_costs_sum_of_cal_costs() {
        let table = ct(vec![1, 1, 2, 2, 8, 16]);
        let p = Partitioning::from_boundaries(&[4, 6], 6);
        let c_r = 2;
        let expected = cal_cost(&table, 0, 4, c_r) + cal_cost(&table, 4, 6, c_r);
        assert_eq!(p.join_cost(&table, c_r), expected);
    }

    #[test]
    fn partition_sizes_and_sums() {
        let table = ct(vec![1, 2, 3, 4]);
        let p = Partitioning::from_assignment(vec![0, 1, 0, 1], 2);
        assert_eq!(p.partition_sizes(), vec![2, 2]);
        assert_eq!(p.partition_match_sums(&table), vec![1 + 3, 2 + 4]);
    }

    #[test]
    fn consecutive_property_detection() {
        let consecutive = Partitioning::from_boundaries(&[2, 5, 9], 9);
        assert!(consecutive.is_consecutive());
        let interleaved = Partitioning::from_assignment(vec![0, 1, 0, 1], 2);
        assert!(!interleaved.is_consecutive());
    }

    #[test]
    fn weakly_ordered_property_detection() {
        // Sizes 4, 2, 2 with c_R = 2 → chunk counts 2, 1, 1: ordered.
        let ordered = Partitioning::from_boundaries(&[4, 6, 8], 8);
        assert!(ordered.is_weakly_ordered(2));
        // Sizes 2, 4 with c_R = 2 → chunk counts 1, 2: not ordered.
        let unordered = Partitioning::from_boundaries(&[2, 6], 6);
        assert!(!unordered.is_weakly_ordered(2));
        // With a huge c_R everything collapses to one chunk → ordered.
        assert!(unordered.is_weakly_ordered(100));
    }

    #[test]
    fn divisible_property_detection() {
        // First partition may be ragged; the rest must be multiples of c_R.
        let ok = Partitioning::from_boundaries(&[3, 7, 11], 11); // sizes 3, 4, 4
        assert!(ok.is_divisible(4));
        let bad = Partitioning::from_boundaries(&[4, 7, 11], 11); // sizes 4, 3, 4
        assert!(!bad.is_divisible(4));
    }

    #[test]
    fn uniform_hash_spreads_records() {
        let p = Partitioning::uniform_hash(10_000, 16);
        let sizes = p.partition_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 10_000);
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(min > 0, "no partition should be empty for 10K records");
        assert!(
            (max as f64) < 2.0 * (min as f64).max(1.0),
            "uniform hashing should be roughly balanced (min={min}, max={max})"
        );
    }

    #[test]
    fn passes_per_record_matches_partition_size() {
        let p = Partitioning::from_boundaries(&[4, 6], 6);
        let passes = p.passes_per_record(2);
        assert_eq!(passes, vec![2, 2, 2, 2, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "last boundary")]
    fn boundaries_must_cover_all_records() {
        let _ = Partitioning::from_boundaries(&[3], 5);
    }
}
