//! Fixed-size pages with a simple slotted layout for fixed-width records.
//!
//! The paper fixes the page size to 4 KB in all experiments; here the page
//! size is a run-time parameter carried by each [`Page`] so that tests can
//! exercise small pages without allocating megabytes of data.
//!
//! Layout of a page (all integers little-endian):
//!
//! ```text
//! +----------------+----------------+------------------------------------+
//! | record_count u16 | record_size u16 | record bodies, densely packed ... |
//! +----------------+----------------+------------------------------------+
//! ```
//!
//! Records within one page must all have the same serialized size
//! (`record_size`); this mirrors the paper's fixed 1 KB records and keeps the
//! per-page record count (`b_R`, `b_S`) exact.

use crate::record::{Record, RecordLayout, RecordRef};
use crate::{Result, StorageError};

/// Default page size used throughout the reproduction (matches the paper).
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// Number of header bytes at the start of every page.
pub const PAGE_HEADER_BYTES: usize = 4;

/// A fixed-size page holding zero or more fixed-width records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    data: Vec<u8>,
}

impl Page {
    /// Creates an empty page of `page_size` bytes for records laid out
    /// according to `layout`.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is too small to hold the header plus one record;
    /// such a configuration is a programming error, not a runtime condition.
    pub fn empty(page_size: usize, layout: RecordLayout) -> Self {
        assert!(
            page_size >= PAGE_HEADER_BYTES + layout.record_bytes(),
            "page size {page_size} too small for records of {} bytes",
            layout.record_bytes()
        );
        let mut data = vec![0u8; page_size];
        data[0..2].copy_from_slice(&0u16.to_le_bytes());
        data[2..4].copy_from_slice(&(layout.record_bytes() as u16).to_le_bytes());
        Page { data }
    }

    /// Reconstructs a page from raw bytes (e.g. read back from a
    /// [`FileDevice`](crate::FileDevice)).
    pub fn from_bytes(data: Vec<u8>) -> Result<Self> {
        if data.len() < PAGE_HEADER_BYTES {
            return Err(StorageError::CorruptPage(format!(
                "page of {} bytes is smaller than the {PAGE_HEADER_BYTES}-byte header",
                data.len()
            )));
        }
        let page = Page { data };
        let count = page.record_count();
        let rec = page.record_size();
        if rec == 0 && count > 0 {
            return Err(StorageError::CorruptPage(
                "non-empty page with zero record size".to_string(),
            ));
        }
        if rec > 0 && PAGE_HEADER_BYTES + count * rec > page.data.len() {
            return Err(StorageError::CorruptPage(format!(
                "{count} records of {rec} bytes exceed page size {}",
                page.data.len()
            )));
        }
        Ok(page)
    }

    /// Total size of the page in bytes.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Serialized size of each record stored in this page.
    pub fn record_size(&self) -> usize {
        u16::from_le_bytes([self.data[2], self.data[3]]) as usize
    }

    /// Number of records currently stored in the page.
    pub fn record_count(&self) -> usize {
        u16::from_le_bytes([self.data[0], self.data[1]]) as usize
    }

    /// Maximum number of records this page can hold.
    pub fn capacity(&self) -> usize {
        if self.record_size() == 0 {
            0
        } else {
            (self.size() - PAGE_HEADER_BYTES) / self.record_size()
        }
    }

    /// Returns `true` if no more records fit.
    pub fn is_full(&self) -> bool {
        self.record_count() >= self.capacity()
    }

    /// Returns `true` if the page holds no records.
    pub fn is_empty(&self) -> bool {
        self.record_count() == 0
    }

    /// Appends a record to the page.
    ///
    /// Returns `Ok(false)` (without modifying the page) if the page is full,
    /// `Ok(true)` on success, and an error if the record's serialized size
    /// does not match the page's record size.
    pub fn push(&mut self, record: &Record) -> Result<bool> {
        self.push_ref(record.as_record_ref())
    }

    /// Appends a borrowed record to the page — the zero-copy twin of
    /// [`push`](Self::push): one length check, one key store, one payload
    /// `memcpy`, no allocation.
    pub fn push_ref(&mut self, record: RecordRef<'_>) -> Result<bool> {
        let rec_size = self.record_size();
        if record.serialized_len() != rec_size {
            return Err(StorageError::RecordTooLarge {
                record_bytes: record.serialized_len(),
                page_capacity: rec_size,
            });
        }
        let count = self.record_count();
        let offset = PAGE_HEADER_BYTES + count * rec_size;
        // Fullness check without the division `capacity()` performs: the
        // next slot must fit inside the page (`rec_size > 0` is implied by
        // the size match above, records are at least the 8-byte key).
        if offset + rec_size > self.data.len() {
            return Ok(false);
        }
        record.write_to(&mut self.data[offset..offset + rec_size]);
        self.set_record_count(count + 1);
        Ok(true)
    }

    /// Reads the record at slot `idx` into an owned [`Record`] (allocates;
    /// API-edge use only — hot paths use [`get_ref`](Self::get_ref)).
    pub fn get(&self, idx: usize) -> Result<Record> {
        Ok(self.get_ref(idx)?.to_record())
    }

    /// Borrows the record at slot `idx` straight out of the page buffer.
    pub fn get_ref(&self, idx: usize) -> Result<RecordRef<'_>> {
        let count = self.record_count();
        if idx >= count {
            return Err(StorageError::PageOutOfBounds {
                index: idx,
                len: count,
            });
        }
        let rec_size = self.record_size();
        let offset = PAGE_HEADER_BYTES + idx * rec_size;
        RecordRef::parse(&self.data[offset..offset + rec_size])
    }

    /// Iterates over all records stored in the page as owned [`Record`]s
    /// (allocates per record; API-edge use only).
    pub fn records(&self) -> impl Iterator<Item = Record> + '_ {
        self.record_refs().map(|r| r.to_record())
    }

    /// Iterates over all records as borrowed views into the page buffer —
    /// the zero-copy scan primitive every hot loop is built on. The header
    /// is decoded once for the whole page, not once per record.
    pub fn record_refs(&self) -> impl Iterator<Item = RecordRef<'_>> {
        let rec_size = self.record_size();
        let count = self.record_count();
        let body = &self.data[PAGE_HEADER_BYTES..];
        (0..count).map(move |i| {
            RecordRef::parse(&body[i * rec_size..(i + 1) * rec_size])
                .expect("record slots hold at least the key")
        })
    }

    /// The layout of the records stored in this page.
    pub fn record_layout(&self) -> RecordLayout {
        RecordLayout::new(self.record_size().saturating_sub(RecordLayout::KEY_BYTES))
    }

    /// Removes all records (the record size is preserved).
    pub fn clear(&mut self) {
        self.set_record_count(0);
    }

    /// Raw byte view of the page (used by the file-backed device).
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    fn set_record_count(&mut self, count: usize) {
        self.data[0..2].copy_from_slice(&(count as u16).to_le_bytes());
    }
}

/// Computes how many records of `record_bytes` serialized bytes fit into one
/// page of `page_size` bytes. This is the paper's `b_R` / `b_S`.
pub fn records_per_page(page_size: usize, record_bytes: usize) -> usize {
    assert!(record_bytes > 0, "record size must be positive");
    (page_size.saturating_sub(PAGE_HEADER_BYTES)) / record_bytes
}

/// Computes the number of pages needed to store `num_records` records of the
/// given size, i.e. ⌈n / b⌉ with b = [`records_per_page`].
pub fn pages_for_records(num_records: usize, page_size: usize, record_bytes: usize) -> usize {
    let per_page = records_per_page(page_size, record_bytes);
    assert!(per_page > 0, "record does not fit in a page");
    num_records.div_ceil(per_page)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordLayout;

    fn layout() -> RecordLayout {
        RecordLayout::new(24)
    }

    #[test]
    fn empty_page_has_no_records() {
        let p = Page::empty(256, layout());
        assert_eq!(p.record_count(), 0);
        assert!(p.is_empty());
        assert!(!p.is_full());
        assert_eq!(p.record_size(), 32);
        assert_eq!(p.capacity(), (256 - PAGE_HEADER_BYTES) / 32);
    }

    #[test]
    fn push_and_get_roundtrip() {
        let mut p = Page::empty(256, layout());
        let r1 = Record::with_fill(42, 24, 0xAB);
        let r2 = Record::with_fill(7, 24, 0xCD);
        assert!(p.push(&r1).unwrap());
        assert!(p.push(&r2).unwrap());
        assert_eq!(p.record_count(), 2);
        assert_eq!(p.get(0).unwrap(), r1);
        assert_eq!(p.get(1).unwrap(), r2);
    }

    #[test]
    fn push_returns_false_when_full() {
        let mut p = Page::empty(PAGE_HEADER_BYTES + 2 * 32, layout());
        assert_eq!(p.capacity(), 2);
        assert!(p.push(&Record::with_fill(1, 24, 0)).unwrap());
        assert!(p.push(&Record::with_fill(2, 24, 0)).unwrap());
        assert!(!p.push(&Record::with_fill(3, 24, 0)).unwrap());
        assert_eq!(p.record_count(), 2);
    }

    #[test]
    fn push_rejects_wrong_record_size() {
        let mut p = Page::empty(256, layout());
        let wrong = Record::with_fill(1, 8, 0);
        assert!(matches!(
            p.push(&wrong),
            Err(StorageError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn get_out_of_bounds_is_error() {
        let p = Page::empty(256, layout());
        assert!(matches!(
            p.get(0),
            Err(StorageError::PageOutOfBounds { .. })
        ));
    }

    #[test]
    fn from_bytes_roundtrip() {
        let mut p = Page::empty(128, layout());
        p.push(&Record::with_fill(9, 24, 1)).unwrap();
        let restored = Page::from_bytes(p.as_bytes().to_vec()).unwrap();
        assert_eq!(restored, p);
        assert_eq!(restored.get(0).unwrap().key(), 9);
    }

    #[test]
    fn from_bytes_rejects_corrupt_header() {
        assert!(Page::from_bytes(vec![1u8]).is_err());
        // record_count = 100, record_size = 64 cannot fit in 16 bytes.
        let mut bytes = vec![0u8; 16];
        bytes[0..2].copy_from_slice(&100u16.to_le_bytes());
        bytes[2..4].copy_from_slice(&64u16.to_le_bytes());
        assert!(Page::from_bytes(bytes).is_err());
    }

    #[test]
    fn records_per_page_matches_capacity() {
        let p = Page::empty(4096, layout());
        assert_eq!(records_per_page(4096, 32), p.capacity());
    }

    #[test]
    fn pages_for_records_rounds_up() {
        assert_eq!(pages_for_records(0, 4096, 32), 0);
        assert_eq!(pages_for_records(1, 4096, 32), 1);
        let per_page = records_per_page(4096, 32);
        assert_eq!(pages_for_records(per_page, 4096, 32), 1);
        assert_eq!(pages_for_records(per_page + 1, 4096, 32), 2);
    }

    #[test]
    fn ref_push_and_get_match_the_owned_path() {
        let mut owned = Page::empty(256, layout());
        let mut borrowed = Page::empty(256, layout());
        let r1 = Record::with_fill(42, 24, 0xAB);
        let r2 = Record::with_fill(7, 24, 0xCD);
        assert!(owned.push(&r1).unwrap() && owned.push(&r2).unwrap());
        assert!(borrowed.push_ref(r1.as_record_ref()).unwrap());
        assert!(borrowed.push_ref(r2.as_record_ref()).unwrap());
        assert_eq!(owned, borrowed);
        let views: Vec<_> = borrowed.record_refs().collect();
        assert_eq!(views.len(), 2);
        assert_eq!(views[0].key(), 42);
        assert_eq!(views[1].key(), 7);
        // The views alias the page buffer.
        let base = borrowed.as_bytes().as_ptr() as usize;
        let p0 = views[0].payload().as_ptr() as usize;
        assert!(p0 > base && p0 < base + borrowed.size());
        assert_eq!(borrowed.get_ref(1).unwrap().to_record(), r2);
        assert_eq!(borrowed.record_layout(), layout());
    }

    #[test]
    fn push_ref_rejects_wrong_record_size() {
        let mut p = Page::empty(256, layout());
        let wrong = Record::with_fill(1, 8, 0);
        assert!(matches!(
            p.push_ref(wrong.as_record_ref()),
            Err(StorageError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn clear_resets_count_but_keeps_record_size() {
        let mut p = Page::empty(256, layout());
        p.push(&Record::with_fill(1, 24, 0)).unwrap();
        p.clear();
        assert!(p.is_empty());
        assert_eq!(p.record_size(), 32);
    }
}
