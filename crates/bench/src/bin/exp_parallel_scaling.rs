//! Wall-clock scaling of the parallel execution surface: NOCAP, DHH, SMJ
//! and sharded statistics collection.
//!
//! Runs the Zipf(1.0) synthetic workload through `NocapJoin::run_parallel`,
//! `DhhJoin::run_parallel`, `SortMergeJoin::run_parallel` and
//! `StatsCollector::collect_parallel` at 1, 2,
//! 4 and 8 workers and reports wall-clock speedup relative to one worker,
//! verifying at every point that the modeled I/O trace and the join output
//! (or the statistics summary) are identical to the sequential path — the
//! engine's core contract: parallelism changes *when* the work happens,
//! never *what* work happens.
//!
//! On `SimDevice` the partitioning passes are pure CPU (hashing, routing,
//! page packing), so the speedup measures the engine itself rather than a
//! disk. Run on a machine with ≥ 4 cores to see the scaling (the report
//! prints the detected parallelism — on a single-core CI runner the
//! speedups will hover around 1.0 by physics, not by design). Pass
//! `--quick` for a smaller sweep.

use std::time::Instant;

use nocap::{NocapConfig, NocapJoin};
use nocap_bench::harness::{
    base_device, device_mode, fault_stack, faults_seed, maybe_audit_io, print_fault_summary,
    report_trace,
};
use nocap_joins::{DhhJoin, SortMergeJoin};
use nocap_model::{JoinRunReport, JoinSpec};
use nocap_obs::Obs;
use nocap_stats::{StatsCollector, StatsConfig};
use nocap_storage::DeviceProfile;
use nocap_workload::{synthetic, Correlation, GeneratedWorkload, SyntheticConfig};

/// The shared timing protocol of every table below: runs `run(threads)`
/// best-of-`repeats` at 1/2/4/8 workers and hands each thread count's best
/// wall-clock, speedup vs one worker and last artifact to `row`.
fn scaling_rows<T>(
    repeats: usize,
    run: impl Fn(usize) -> T,
    mut row: impl FnMut(usize, f64, f64, T),
) {
    let mut base_secs = None;
    for threads in [1usize, 2, 4, 8] {
        let mut best = f64::INFINITY;
        let mut result = None;
        for _ in 0..repeats {
            let started = Instant::now();
            let r = run(threads);
            let secs = started.elapsed().as_secs_f64();
            if secs < best {
                best = secs;
            }
            result = Some(r);
        }
        let result = result.expect("at least one run");
        let base = *base_secs.get_or_insert(best);
        row(threads, best, base / best, result);
    }
}

/// Times `run(threads)` and checks its report against the sequential
/// baseline, printing one CSV row per thread count.
fn scaling_table(
    algo: &str,
    sequential: &JoinRunReport,
    repeats: usize,
    device: &nocap_storage::device::DeviceRef,
    run: impl Fn(usize) -> JoinRunReport,
) {
    println!("# {algo} scaling");
    println!("threads,wall_secs,speedup_vs_1,total_ios,io_identical_to_sequential");
    scaling_rows(
        repeats,
        |threads| {
            device.reset_stats();
            run(threads)
        },
        |threads, best, speedup, report| {
            assert_eq!(report.output_records, sequential.output_records);
            let io_identical = report.partition_io == sequential.partition_io
                && report.probe_io == sequential.probe_io;
            assert!(
                io_identical,
                "{algo}: parallel I/O diverged at {threads} threads"
            );
            println!(
                "{threads},{best:.4},{speedup:.2},{},{io_identical}",
                report.total_ios()
            );
        },
    );
}

/// Re-runs one algorithm at 4 workers with the trace recorder on, checks the
/// recording changed nothing about the modeled execution, and prints the
/// per-phase wall-time and skew breakdown (plus a chrome trace when
/// `NOCAP_TRACE` is set).
fn traced_breakdown(
    algo: &str,
    sequential: &JoinRunReport,
    device: &nocap_storage::device::DeviceRef,
    run: impl Fn(&Obs) -> JoinRunReport,
) {
    device.reset_stats();
    let obs = Obs::recording();
    let report = run(&obs);
    assert_eq!(report.output_records, sequential.output_records);
    assert_eq!(
        report.partition_io, sequential.partition_io,
        "{algo}: recording must not change the partition-phase I/O"
    );
    assert_eq!(
        report.probe_io, sequential.probe_io,
        "{algo}: recording must not change the probe-phase I/O"
    );
    report_trace(algo, &report);
    maybe_audit_io(algo, &report, &DeviceProfile::osync_off());
    println!();
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n_r, n_s, repeats) = if quick {
        (10_000, 80_000, 1)
    } else {
        (40_000, 320_000, 3)
    };
    let record_bytes = 256;
    let buffer_pages = 96;
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    println!(
        "# exp_parallel_scaling: n_R = {n_r}, n_S = {n_s}, {record_bytes}-byte records, \
         B = {buffer_pages} pages, Zipf(1.0), best of {repeats} runs"
    );
    println!("# detected available parallelism: {cores} hardware thread(s)");
    println!("# device: {}", device_mode().label());

    // NOCAP_DEVICE selects the base device (SimDevice or the block-layer
    // FileDevice); NOCAP_IO_AUDIT additionally wraps it in a tracer so the
    // traced breakdowns capture device-level events. The wrappers are
    // pass-through for the timed runs (no recorder attached there).
    let base = base_device();
    // NOCAP_FAULTS layers checksums + retry over a seeded errors-only fault
    // schedule. Recovered faults leave the modeled I/O bit-identical, so
    // every parallel-vs-sequential assertion below still holds — that
    // invariance under injection is exactly what the smoke run checks.
    let (device, faults) = match faults_seed() {
        Some(seed) => {
            let (device, rig) = fault_stack(base, seed, 2_000);
            (device, Some(rig))
        }
        None => (base, None),
    };
    let config = SyntheticConfig {
        n_r,
        n_s,
        record_bytes,
        correlation: Correlation::Zipf { alpha: 1.0 },
        mcv_count: n_r / 20,
        seed: 0x0CA9,
    };
    let wl: GeneratedWorkload =
        synthetic::generate(device.clone(), &config).expect("workload generation");
    if let Some(rig) = &faults {
        rig.arm();
    }
    let spec = JoinSpec::paper_synthetic(record_bytes, buffer_pages);

    // ---- NOCAP --------------------------------------------------------
    let join = NocapJoin::new(spec, NocapConfig::default());
    device.reset_stats();
    let sequential = join.run(&wl.r, &wl.s, &wl.mcvs).expect("sequential run");
    assert_eq!(sequential.output_records, wl.expected_join_output());
    scaling_table("NOCAP", &sequential, repeats, &device, |threads| {
        join.run_parallel(&wl.r, &wl.s, &wl.mcvs, threads)
            .expect("parallel run")
    });
    traced_breakdown("NOCAP", &sequential, &device, |obs| {
        join.run_parallel_obs(&wl.r, &wl.s, &wl.mcvs, 4, obs)
            .expect("traced run")
    });

    // ---- DHH (the strongest baseline, now also parallel) --------------
    let dhh = DhhJoin::with_defaults(spec);
    device.reset_stats();
    let dhh_sequential = dhh.run(&wl.r, &wl.s, &wl.mcvs).expect("sequential DHH");
    assert_eq!(dhh_sequential.output_records, wl.expected_join_output());
    scaling_table("DHH", &dhh_sequential, repeats, &device, |threads| {
        dhh.run_parallel(&wl.r, &wl.s, &wl.mcvs, threads)
            .expect("parallel DHH")
    });
    traced_breakdown("DHH", &dhh_sequential, &device, |obs| {
        dhh.run_parallel_obs(&wl.r, &wl.s, &wl.mcvs, 4, obs)
            .expect("traced DHH")
    });

    // ---- SMJ (parallel sort-run generation) ---------------------------
    let smj = SortMergeJoin::new(spec);
    device.reset_stats();
    let smj_sequential = smj.run(&wl.r, &wl.s).expect("sequential SMJ");
    assert_eq!(smj_sequential.output_records, wl.expected_join_output());
    scaling_table("SMJ", &smj_sequential, repeats, &device, |threads| {
        smj.run_parallel(&wl.r, &wl.s, threads)
            .expect("parallel SMJ")
    });
    traced_breakdown("SMJ", &smj_sequential, &device, |obs| {
        smj.run_parallel_obs(&wl.r, &wl.s, 4, obs)
            .expect("traced SMJ")
    });

    // ---- Sharded statistics collection --------------------------------
    // The summary must be bit-identical at every thread count; the table
    // reports the wall-clock of the sharded S scan.
    let stats_config = StatsConfig::for_budget_pages(4, spec.page_size);
    let baseline_summary =
        StatsCollector::collect_parallel(stats_config, &wl.s, 1).expect("collection");
    println!("# stats collection scaling (sharded S scan, 4-page sketch budget)");
    println!("threads,wall_secs,speedup_vs_1,summary_identical_to_1_thread");
    scaling_rows(
        repeats,
        |threads| {
            StatsCollector::collect_parallel(stats_config, &wl.s, threads)
                .expect("parallel collection")
        },
        |threads, best, speedup, summary| {
            let identical = summary == baseline_summary;
            assert!(identical, "summary diverged at {threads} threads");
            println!("{threads},{best:.4},{speedup:.2},{identical}");
        },
    );

    if let Some(rig) = &faults {
        print_fault_summary("parallel_scaling", rig);
    }
}
