//! Graceful degradation under memory pressure: the budget ladder.
//!
//! NOCAP plans for a fixed budget of `B` pages, but a deployed operator can
//! meet an admission-control pool that cannot grant `B` — or discover
//! mid-plan that `B` was optimistic (a
//! [`StorageError::OutOfMemory`](nocap_storage::StorageError::OutOfMemory)
//! from a buffer-pool reservation). The cost model is monotone in `B`:
//! shrinking the budget never makes a plan infeasible, it only buys more
//! passes (§4 — smaller `B` means more partitions and more spill I/O). So
//! instead of failing outright, [`run_degrading`] walks a bounded **budget
//! ladder**: try `B`, and on out-of-memory retry with `¾·B`, then `¾²·B`,
//! … down to a floor, holding an admission reservation for the attempted
//! budget for the lifetime of each attempt.
//!
//! Every step is recorded — in the returned [`DegradedRun::attempts`] and,
//! when observability is on, as `degradation_steps` /
//! `degraded_budget_pages` counters in the run's trace — so a degraded run
//! is never mistaken for a first-try success. Any error other than
//! `OutOfMemory` aborts the ladder immediately: degradation is a response
//! to memory pressure, not a generic retry loop.

use nocap_obs::Obs;
use nocap_storage::{BufferPool, Result, StorageError};

use crate::report::JoinRunReport;

/// The bounded budget-degradation policy: how far and how fast a join's
/// page budget may shrink under memory pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetLadder {
    /// Maximum number of degradation steps (budget shrinks) before the
    /// ladder gives up and surfaces the out-of-memory error.
    pub max_steps: usize,
    /// Numerator of the per-step shrink factor.
    pub shrink_numerator: usize,
    /// Denominator of the per-step shrink factor (¾ by default: gentle
    /// enough to stay near the planned budget, fast enough to reach the
    /// floor in a handful of steps).
    pub shrink_denominator: usize,
    /// Smallest budget the ladder will attempt, in pages. The default (5)
    /// is the largest of the executors' structural minimums, so every
    /// operator in the suite still runs at the floor.
    pub floor_pages: usize,
}

impl Default for BudgetLadder {
    fn default() -> Self {
        BudgetLadder {
            max_steps: 4,
            shrink_numerator: 3,
            shrink_denominator: 4,
            floor_pages: 5,
        }
    }
}

impl BudgetLadder {
    /// The budget one rung below `budget`, or `None` if `budget` is already
    /// at (or below) the floor.
    pub fn next_budget(&self, budget: usize) -> Option<usize> {
        if budget <= self.floor_pages {
            return None;
        }
        let shrunk = budget * self.shrink_numerator / self.shrink_denominator.max(1);
        // Guarantee progress even when the shrink factor rounds to a no-op.
        Some(shrunk.min(budget - 1).max(self.floor_pages))
    }
}

/// One failed rung of the ladder: the budget that was attempted and the
/// out-of-memory error that rejected it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradationAttempt {
    /// The page budget this attempt ran (or tried to reserve) with.
    pub budget_pages: usize,
    /// The `OutOfMemory` error that failed the attempt.
    pub error: StorageError,
}

/// A join run that may have degraded its budget before succeeding.
#[derive(Debug, Clone)]
pub struct DegradedRun {
    /// The successful run's report.
    pub report: JoinRunReport,
    /// The budget the successful attempt actually ran with.
    pub budget_pages: usize,
    /// The failed attempts that preceded it, in ladder order (empty for a
    /// first-try success).
    pub attempts: Vec<DegradationAttempt>,
}

impl DegradedRun {
    /// Number of degradation steps taken before the run succeeded.
    pub fn steps(&self) -> usize {
        self.attempts.len()
    }
}

/// Runs `run` down the budget ladder until it succeeds or the ladder is
/// exhausted.
///
/// Each attempt first reserves the attempted budget from `admission` — the
/// admission-control pool standing in for the memory the operator is
/// granted — and holds that reservation for the attempt's lifetime, so
/// concurrent operators sharing the pool see the attempted footprint. A
/// failed reservation or an [`OutOfMemory`](StorageError::OutOfMemory)
/// returned by `run` records a [`DegradationAttempt`] and retries one rung
/// down; any other error aborts immediately. When the ladder is exhausted
/// (or the floor rejected), the last out-of-memory error is returned and
/// the admission pool holds nothing.
///
/// On success the degradation trail is recorded on `obs` as counters
/// (`degradation_steps`, `degraded_budget_pages`) and returned in the
/// [`DegradedRun`].
pub fn run_degrading(
    admission: &BufferPool,
    initial_budget: usize,
    ladder: &BudgetLadder,
    obs: &Obs,
    mut run: impl FnMut(usize) -> Result<JoinRunReport>,
) -> Result<DegradedRun> {
    let mut budget = initial_budget.max(ladder.floor_pages);
    let mut attempts: Vec<DegradationAttempt> = Vec::new();
    loop {
        let oom = match admission.reserve(budget) {
            Ok(_reservation) => match run(budget) {
                Ok(report) => {
                    obs.count("degradation_steps", attempts.len() as u64);
                    obs.count("degraded_budget_pages", budget as u64);
                    return Ok(DegradedRun {
                        report,
                        budget_pages: budget,
                        attempts,
                    });
                }
                Err(err @ StorageError::OutOfMemory { .. }) => err,
                Err(other) => return Err(other),
            },
            Err(err @ StorageError::OutOfMemory { .. }) => err,
            Err(other) => return Err(other),
        };
        attempts.push(DegradationAttempt {
            budget_pages: budget,
            error: oom.clone(),
        });
        if attempts.len() > ladder.max_steps {
            return Err(oom);
        }
        budget = match ladder.next_budget(budget) {
            Some(next) => next,
            None => return Err(oom),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_report() -> JoinRunReport {
        JoinRunReport::new("test")
    }

    fn oom(requested: usize, available: usize) -> StorageError {
        StorageError::OutOfMemory {
            requested,
            available,
        }
    }

    #[test]
    fn first_try_success_takes_no_steps() {
        let admission = BufferPool::new(64);
        let run = run_degrading(&admission, 32, &BudgetLadder::default(), &Obs::off(), |b| {
            assert_eq!(b, 32);
            Ok(dummy_report())
        })
        .unwrap();
        assert_eq!(run.budget_pages, 32);
        assert!(run.attempts.is_empty());
        assert_eq!(admission.in_use(), 0, "reservation released after the run");
    }

    #[test]
    fn admission_pressure_degrades_until_the_reservation_fits() {
        // The pool can only grant 20 pages; a 48-page plan must walk down
        // 48 → 36 → 27 → 20 before the reservation succeeds.
        let admission = BufferPool::new(20);
        let mut budgets = Vec::new();
        let run = run_degrading(&admission, 48, &BudgetLadder::default(), &Obs::off(), |b| {
            budgets.push(b);
            Ok(dummy_report())
        })
        .unwrap();
        assert_eq!(budgets, vec![20]);
        assert_eq!(run.budget_pages, 20);
        assert_eq!(run.steps(), 3, "48, 36 and 27 were rejected by admission");
        assert!(run
            .attempts
            .iter()
            .all(|a| matches!(a.error, StorageError::OutOfMemory { .. })));
        assert_eq!(admission.in_use(), 0);
    }

    #[test]
    fn runtime_oom_degrades_and_records_each_attempt() {
        let admission = BufferPool::new(256);
        let mut calls = 0usize;
        let run = run_degrading(&admission, 64, &BudgetLadder::default(), &Obs::off(), |b| {
            calls += 1;
            if calls < 3 {
                Err(oom(b, 0))
            } else {
                Ok(dummy_report())
            }
        })
        .unwrap();
        assert_eq!(calls, 3);
        assert_eq!(run.steps(), 2);
        assert_eq!(run.attempts[0].budget_pages, 64);
        assert_eq!(run.attempts[1].budget_pages, 48);
        assert_eq!(run.budget_pages, 36);
        assert_eq!(admission.in_use(), 0);
    }

    #[test]
    fn ladder_exhaustion_surfaces_the_last_oom_cleanly() {
        let admission = BufferPool::new(256);
        let ladder = BudgetLadder::default();
        let err = run_degrading(&admission, 64, &ladder, &Obs::off(), |b| Err(oom(b, 0)))
            .expect_err("every rung fails");
        assert!(matches!(err, StorageError::OutOfMemory { .. }));
        assert_eq!(admission.in_use(), 0, "no reservation leaks on failure");
    }

    #[test]
    fn floor_rejection_fails_without_spinning() {
        // Budget already at the floor: one attempt, then the error.
        let admission = BufferPool::new(2);
        let mut calls = 0usize;
        let err = run_degrading(&admission, 5, &BudgetLadder::default(), &Obs::off(), |_| {
            calls += 1;
            Ok(dummy_report())
        })
        .expect_err("admission can never grant the floor");
        assert!(matches!(err, StorageError::OutOfMemory { .. }));
        assert_eq!(calls, 0, "run never executes without admission");
    }

    #[test]
    fn non_oom_errors_abort_the_ladder_immediately() {
        let admission = BufferPool::new(256);
        let mut calls = 0usize;
        let err = run_degrading(
            &admission,
            64,
            &BudgetLadder::default(),
            &Obs::off(),
            |_| {
                calls += 1;
                Err(StorageError::Io("disk on fire".into()))
            },
        )
        .expect_err("I/O errors are not memory pressure");
        assert_eq!(err, StorageError::Io("disk on fire".into()));
        assert_eq!(calls, 1);
        assert_eq!(admission.in_use(), 0);
    }

    #[test]
    fn next_budget_always_progresses_and_respects_the_floor() {
        let ladder = BudgetLadder::default();
        assert_eq!(ladder.next_budget(64), Some(48));
        assert_eq!(ladder.next_budget(8), Some(6));
        assert_eq!(ladder.next_budget(6), Some(5));
        assert_eq!(ladder.next_budget(5), None);
        assert_eq!(ladder.next_budget(1), None);
        // A degenerate shrink factor still makes progress.
        let lazy = BudgetLadder {
            shrink_numerator: 1,
            shrink_denominator: 1,
            ..ladder
        };
        assert_eq!(lazy.next_budget(10), Some(9));
    }
}
