//! # nocap-storage
//!
//! Storage substrate for the NOCAP reproduction.
//!
//! The NOCAP paper evaluates storage-based joins on a server with a PCIe SSD
//! and reports **number of I/Os** (4 KB page reads and writes, split into
//! sequential and random accesses) as its primary metric, deriving latency
//! from the same I/O trace through the device's read/write asymmetry
//! (μ = random-write / sequential-read, τ = sequential-write /
//! sequential-read).
//!
//! This crate provides everything the join algorithms need from a storage
//! engine, built from scratch:
//!
//! * [`page`] — fixed-size slotted pages holding fixed-width records.
//! * [`record`] — the record format shared by both relations of a join.
//! * [`iostats`] — I/O counters and the parametric latency model
//!   ([`DeviceProfile`]) used to convert an I/O trace into estimated latency.
//! * [`device`] — the [`BlockDevice`] trait with two implementations:
//!   [`SimDevice`] (in-memory, exact I/O accounting — the default used by all
//!   experiments) and [`FileDevice`] (real files).
//! * [`block`] — the real-device block layer behind [`FileDevice`]: a
//!   sharded open-file-handle cache with positioned reads, block-granular
//!   read-ahead and write-behind coalescing, torn-page recovery, and
//!   [`SyncPolicy`] durability knobs via [`FileDeviceBuilder`]. Modeled
//!   [`IoStats`] stay per-page and bit-identical to [`SimDevice`];
//!   [`BlockStats`] reports the physical syscall shape.
//! * [`buffer`] — a strict page-budget [`BufferPool`]; every join draws its
//!   working memory from one of these so the *B*-page budget of the paper is
//!   enforced rather than assumed.
//! * [`relation`] — a stored table: a sequence of pages on a device plus
//!   sequential scan support.
//! * [`spill`] — partition spill files with one-page output buffers
//!   (random-write accounting), used by every partitioning join.
//! * [`hash_table`] — an in-memory build/probe hash table with fudge-factor
//!   (F) space accounting, a sealed bucket-contiguous probe layout and
//!   vectorized key compares.
//! * [`hash`] — the one key-hashing utility every crate shares: SplitMix64
//!   routing hash, seeded recursion-level hashes, the independent Murmur
//!   stream and the Fibonacci bucket mapping.
//! * [`simd`] — the vectorized key-scan kernels behind the hash table and
//!   bloom filter (`std::simd` on nightly, auto-vectorizable chunked
//!   scalar on stable — autodetected at build time).
//! * [`radix`] — software-managed, cache-line-sized per-partition write
//!   buffers ([`RadixRouter`]) that batch records in front of any
//!   partition sink without changing per-partition arrival order.
//! * [`sort`] — external sort (arena-backed run generation over a fixed
//!   chunk grid + loser-tree multiway merge) used by the sort-merge join
//!   baseline.
//! * [`traced`] — [`TracedDevice`], a purely observational [`BlockDevice`]
//!   wrapper that reports every page access (file, page, declared
//!   [`IoKind`], optional measured latency) to an attached [`IoEventSink`];
//!   the substrate of the modeled-vs-observed I/O audit in `nocap-obs`.
//! * [`fault`] — [`FaultDevice`], a deterministic fault-injection wrapper
//!   (transient/persistent errors, bit-flip corruption, latency spikes)
//!   driven by a seeded schedule; the substrate of the differential fault
//!   matrix.
//! * [`checked`] — [`CheckedDevice`], out-of-band per-page checksums
//!   verified on every read plus a bounded [`RetryPolicy`] that re-drives
//!   transient failures.
//! * [`sync`] — poison-tolerant lock helpers shared by every crate, so one
//!   panicked worker cannot cascade panics through shared state.
//!
//! The crate has no dependencies and is deliberately self-contained so that
//! the algorithm crates (`nocap` and `nocap-joins`) only talk to storage
//! through these interfaces.
//!
//! The whole layer is **thread-safe**: [`BlockDevice`] requires
//! `Send + Sync` (devices use interior locking — an `RwLock`ed page store
//! and lock-free atomic I/O counters in [`SimDevice`]), [`BufferPool`] is a
//! mutex-protected shared accountant, and [`DeviceRef`](device::DeviceRef)
//! is an `Arc`. This is what lets the `nocap-par` execution engine shard
//! partitioning scans across worker threads while the I/O trace and the
//! *B*-page budget stay exact.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(nocap_simd, feature(portable_simd))]

pub mod block;
pub mod bloom;
pub mod buffer;
pub mod checked;
pub mod device;
pub mod fault;
pub mod hash;
pub mod hash_table;
pub mod iostats;
pub mod page;
pub mod radix;
pub mod record;
pub mod relation;
pub mod simd;
pub mod sort;
pub mod spill;
pub mod sync;
pub mod traced;

pub use block::{BlockStats, FileDeviceBuilder, SyncPolicy, DEFAULT_PAGES_PER_BLOCK};
pub use bloom::BloomFilter;
pub use buffer::{BufferPool, Reservation};
pub use checked::{page_checksum, CheckedDevice, RetryPolicy, RetryStats};
pub use device::{BlockDevice, FileDevice, FileId, SimDevice};
pub use fault::{FaultDevice, FaultKind, FaultPlan, FaultSpec, FaultStats, FaultTarget};
pub use hash_table::{JoinHashTable, ProbeIter};
pub use iostats::{AtomicIoStats, DeviceProfile, IoKind, IoStats};
pub use page::{Page, DEFAULT_PAGE_SIZE};
pub use radix::RadixRouter;
pub use record::{Record, RecordBatch, RecordLayout, RecordRef};
pub use relation::{Relation, RelationBuilder, RelationScan};
pub use sort::{run_chunks, sort_chunk, ExternalSorter, LoserTree, MergeIterator, SortScratch};
pub use spill::{PartitionHandle, PartitionReader, PartitionWriter, SpillGuard};
pub use sync::{into_inner_unpoisoned, lock_unpoisoned, read_unpoisoned, write_unpoisoned};
pub use traced::{IoEventSink, IoMarkerKind, IoOp, TracedDevice};

/// Errors produced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A record was larger than the page it was supposed to fit into.
    RecordTooLarge {
        /// Size of the record in bytes (including key).
        record_bytes: usize,
        /// Usable bytes per page.
        page_capacity: usize,
    },
    /// A page index was out of bounds for the given file.
    PageOutOfBounds {
        /// Requested page index.
        index: usize,
        /// Number of pages in the file.
        len: usize,
    },
    /// A file id was not known to the device.
    UnknownFile(FileId),
    /// The buffer pool could not satisfy a reservation.
    OutOfMemory {
        /// Pages requested.
        requested: usize,
        /// Pages still available.
        available: usize,
    },
    /// An I/O error from the underlying operating system (only produced by
    /// [`FileDevice`]).
    Io(String),
    /// A page failed to deserialize (corrupt header or truncated body) or a
    /// checksum verification failed.
    CorruptPage(String),
    /// A worker thread panicked; the payload message is preserved so the
    /// top-level caller sees a deterministic error instead of a process
    /// abort.
    WorkerPanicked(String),
    /// The operation was abandoned because a sibling worker already failed
    /// (first-error cancellation). The root cause is reported separately;
    /// this variant only marks the cancelled siblings.
    Cancelled,
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::RecordTooLarge {
                record_bytes,
                page_capacity,
            } => write!(
                f,
                "record of {record_bytes} bytes does not fit in a page with {page_capacity} usable bytes"
            ),
            StorageError::PageOutOfBounds { index, len } => {
                write!(f, "page index {index} out of bounds for file of {len} pages")
            }
            StorageError::UnknownFile(id) => write!(f, "unknown file id {id:?}"),
            StorageError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "buffer pool exhausted: requested {requested} pages, {available} available"
            ),
            StorageError::Io(msg) => write!(f, "I/O error: {msg}"),
            StorageError::CorruptPage(msg) => write!(f, "corrupt page: {msg}"),
            StorageError::WorkerPanicked(msg) => write!(f, "worker thread panicked: {msg}"),
            StorageError::Cancelled => {
                write!(f, "operation cancelled after a sibling worker failed")
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, StorageError>;
