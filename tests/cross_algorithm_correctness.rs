//! Cross-crate integration tests: every executor must produce the same join
//! output on the same workload, across correlations and memory budgets, and
//! the skew-aware executors must actually benefit from skew.

use nocap_suite::joins::{
    naive_join_count, DhhConfig, DhhJoin, GraceHashJoin, HistoJoin, NestedBlockJoin, SortMergeJoin,
};
use nocap_suite::model::JoinSpec;
use nocap_suite::nocap::{NocapConfig, NocapJoin};
use nocap_suite::storage::SimDevice;
use nocap_suite::workload::{synthetic, Correlation, GeneratedWorkload, SyntheticConfig};

fn workload(correlation: Correlation, n_r: usize, n_s: usize, seed: u64) -> GeneratedWorkload {
    let device = SimDevice::new_ref();
    synthetic::generate(
        device,
        &SyntheticConfig {
            n_r,
            n_s,
            record_bytes: 128,
            correlation,
            mcv_count: (n_r / 20).max(10),
            seed,
        },
    )
    .expect("workload generation")
}

fn all_outputs(wl: &GeneratedWorkload, spec: JoinSpec) -> Vec<(&'static str, u64)> {
    let device = wl.r.device().clone();
    let mut results = Vec::new();

    device.reset_stats();
    results.push((
        "NOCAP",
        NocapJoin::new(spec, NocapConfig::default())
            .run(&wl.r, &wl.s, &wl.mcvs)
            .unwrap()
            .output_records,
    ));
    device.reset_stats();
    results.push((
        "DHH",
        DhhJoin::new(spec, DhhConfig::default())
            .run(&wl.r, &wl.s, &wl.mcvs)
            .unwrap()
            .output_records,
    ));
    device.reset_stats();
    results.push((
        "Histojoin",
        HistoJoin::new(spec)
            .run(&wl.r, &wl.s, &wl.mcvs)
            .unwrap()
            .output_records,
    ));
    device.reset_stats();
    results.push((
        "GHJ",
        GraceHashJoin::new(spec)
            .run(&wl.r, &wl.s)
            .unwrap()
            .output_records,
    ));
    device.reset_stats();
    results.push((
        "SMJ",
        SortMergeJoin::new(spec)
            .run(&wl.r, &wl.s)
            .unwrap()
            .output_records,
    ));
    device.reset_stats();
    results.push((
        "NBJ",
        NestedBlockJoin::new(spec)
            .run(&wl.r, &wl.s)
            .unwrap()
            .output_records,
    ));
    results
}

#[test]
fn every_algorithm_agrees_with_the_naive_join_zipf() {
    let wl = workload(Correlation::Zipf { alpha: 1.0 }, 3_000, 24_000, 1);
    let expected = naive_join_count(&wl.r, &wl.s).unwrap();
    for budget in [24usize, 64, 256] {
        let spec = JoinSpec::paper_synthetic(128, budget);
        for (name, output) in all_outputs(&wl, spec) {
            assert_eq!(output, expected, "{name} disagrees at B = {budget}");
        }
    }
}

#[test]
fn every_algorithm_agrees_with_the_naive_join_uniform() {
    let wl = workload(Correlation::Uniform, 3_000, 24_000, 2);
    let expected = naive_join_count(&wl.r, &wl.s).unwrap();
    let spec = JoinSpec::paper_synthetic(128, 48);
    for (name, output) in all_outputs(&wl, spec) {
        assert_eq!(output, expected, "{name} disagrees");
    }
}

#[test]
fn every_algorithm_agrees_under_extreme_skew() {
    // One key owns half of S.
    let device = SimDevice::new_ref();
    let n_r = 2_000usize;
    let mut counts = vec![4u64; n_r];
    counts[0] = 4 * n_r as u64;
    let wl = {
        let counts_clone = counts.clone();
        nocap_suite::workload::synthetic::materialize(device, &counts_clone, 128, 100, 3).unwrap()
    };
    let expected = naive_join_count(&wl.r, &wl.s).unwrap();
    let spec = JoinSpec::paper_synthetic(128, 32);
    for (name, output) in all_outputs(&wl, spec) {
        assert_eq!(output, expected, "{name} disagrees under extreme skew");
    }
}

#[test]
fn nocap_never_does_more_io_than_ghj() {
    let wl = workload(Correlation::Zipf { alpha: 1.0 }, 4_000, 32_000, 4);
    let device = wl.r.device().clone();
    for budget in [32usize, 64, 128] {
        let spec = JoinSpec::paper_synthetic(128, budget);
        device.reset_stats();
        let nocap_ios = NocapJoin::new(spec, NocapConfig::default())
            .run(&wl.r, &wl.s, &wl.mcvs)
            .unwrap()
            .total_ios();
        device.reset_stats();
        let ghj_ios = GraceHashJoin::new(spec)
            .run(&wl.r, &wl.s)
            .unwrap()
            .total_ios();
        assert!(
            nocap_ios <= ghj_ios,
            "NOCAP ({nocap_ios}) must not exceed GHJ ({ghj_ios}) at B = {budget}"
        );
    }
}

#[test]
fn nocap_beats_dhh_under_medium_skew_and_small_memory() {
    // The headline claim of the paper, scaled down: with a medium-skew
    // correlation and a limited budget NOCAP needs fewer I/Os than DHH with
    // its fixed 2 % thresholds.
    let wl = workload(Correlation::Zipf { alpha: 0.7 }, 6_000, 48_000, 5);
    let device = wl.r.device().clone();
    let spec = JoinSpec::paper_synthetic(128, 48);
    device.reset_stats();
    let nocap_ios = NocapJoin::new(spec, NocapConfig::default())
        .run(&wl.r, &wl.s, &wl.mcvs)
        .unwrap()
        .total_ios();
    device.reset_stats();
    let dhh_ios = DhhJoin::new(spec, DhhConfig::default())
        .run(&wl.r, &wl.s, &wl.mcvs)
        .unwrap()
        .total_ios();
    assert!(
        nocap_ios <= dhh_ios,
        "NOCAP ({nocap_ios}) should not lose to DHH ({dhh_ios}) under medium skew"
    );
}

#[test]
fn skew_makes_the_join_cheaper_for_correlation_aware_algorithms() {
    // Same data volume, different correlation: NOCAP should need fewer I/Os
    // on the skewed workload because the hot keys stay in memory.
    let uniform = workload(Correlation::Uniform, 4_000, 32_000, 6);
    let skewed = workload(Correlation::Zipf { alpha: 1.3 }, 4_000, 32_000, 6);
    let spec = JoinSpec::paper_synthetic(128, 64);

    uniform.r.device().reset_stats();
    let uniform_ios = NocapJoin::new(spec, NocapConfig::default())
        .run(&uniform.r, &uniform.s, &uniform.mcvs)
        .unwrap()
        .total_ios();
    skewed.r.device().reset_stats();
    let skewed_ios = NocapJoin::new(spec, NocapConfig::default())
        .run(&skewed.r, &skewed.s, &skewed.mcvs)
        .unwrap()
        .total_ios();
    assert!(
        skewed_ios < uniform_ios,
        "skew should reduce NOCAP's I/O ({skewed_ios} vs {uniform_ios})"
    );
}
