//! The NOCAP planner (Algorithm 10).
//!
//! Using only the top-k MCV statistics (the same information PostgreSQL's
//! skew optimization consumes), the planner chooses:
//!
//! * `K_mem` — how many of the hottest keys to pin in the in-memory hash
//!   table during partitioning,
//! * `K_disk` — how many of the next-hottest keys to give *designated* disk
//!   partitions (so their S records are written once and scanned once), and
//! * `m_rest` — how many pages remain for partitioning everything else,
//!
//! subject to the strict §4.1 memory breakdown
//! `B_HS + B_HT + B_f + m_disk + m_rest ≤ B − 2`. Each candidate split is
//! costed with the DP of [`crate::ocap::dp`] for the designated keys and
//! [`g_dhh`](nocap_model::g_dhh) for the residual keys; the cheapest plan
//! wins.
//!
//! The paper sweeps every value of `|K_mem|` and `|K_disk|`; thanks to the
//! pruning of §3.1.3 this takes under a second for k = 50 000 MCVs. This
//! implementation evaluates the same search space on an evenly spaced grid
//! (configurable, endpoints always included), which keeps planning in the
//! microsecond range for the scaled-down workloads while converging to the
//! same plans in the cases the tests pin down.

use nocap_model::{g_dhh, CorrelationTable, JoinSpec, RoundedHashParams};

use crate::ocap::dp::{partition_dp, DpOptions};
use crate::plan::NocapPlan;

/// Planner configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannerConfig {
    /// Number of candidate values evaluated for `|K_mem|` and `|K_disk|`
    /// (endpoints are always included). Larger = closer to the exhaustive
    /// sweep of the paper, smaller = faster planning.
    pub grid_points: usize,
    /// Rounded-hash parameters used when estimating the residual cost and
    /// later by the executor.
    pub rh_params: RoundedHashParams,
    /// Dynamic-program options for the designated-key partitioning.
    pub dp: DpOptions,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            grid_points: 48,
            rh_params: RoundedHashParams::default(),
            dp: DpOptions::default(),
        }
    }
}

/// Evenly spaced candidate values in `0..=max`, always including both
/// endpoints.
fn grid(max: usize, points: usize) -> Vec<usize> {
    if max == 0 {
        return vec![0];
    }
    let points = points.max(2);
    if max < points {
        return (0..=max).collect();
    }
    let mut values: Vec<usize> = (0..points)
        .map(|i| (i as f64 / (points - 1) as f64 * max as f64).round() as usize)
        .collect();
    values.dedup();
    values
}

/// Runs Algorithm 10 and returns the chosen plan.
///
/// * `mcvs` — `(key, match count)` pairs for the tracked most common values,
///   in any order.
/// * `n_r`, `n_s` — total record counts of R and S (cardinality statistics).
pub fn plan_nocap(
    mcvs: &[(u64, u64)],
    n_r: usize,
    n_s: u64,
    spec: &JoinSpec,
    config: &PlannerConfig,
) -> NocapPlan {
    let mut ranked: Vec<(u64, u64)> = mcvs.to_vec();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    // Prefix sums over the descending MCV counts: mass of the top t keys.
    let mut prefix: Vec<u64> = Vec::with_capacity(ranked.len() + 1);
    prefix.push(0);
    for (_, c) in &ranked {
        prefix.push(prefix.last().unwrap() + c);
    }
    let top_mass = |t: usize| -> u64 { prefix[t.min(ranked.len())] };

    let k = ranked.len();
    let c_r = spec.c_r().max(1);
    let b_r = spec.b_r().max(1) as f64;
    let b_s = spec.b_s().max(1) as f64;
    let mu = spec.mu();
    let budget = spec.buffer_pages;
    let max_sel = k.min(c_r);

    let mut best: Option<(f64, usize, usize, usize, Vec<usize>)> = None;

    for &i1 in &grid(max_sel, config.grid_points) {
        let fixed_mem = spec.hash_table_pages(i1) + spec.hash_set_pages(i1);
        if fixed_mem + 2 >= budget {
            break; // caching more keys only makes this worse
        }
        for &i2 in &grid(max_sel - i1, config.grid_points) {
            if i1 + i2 > k {
                continue;
            }
            let designated_mass = top_mass(i1 + i2) - top_mass(i1);
            let max_j = if i2 == 0 { 0 } else { i2.div_ceil(c_r).max(1) };
            let j_candidates: Vec<usize> = if i2 == 0 {
                vec![0]
            } else {
                (1..=max_j).collect()
            };
            for j in j_candidates {
                let fixed = fixed_mem + spec.hash_map_pages(i2) + j;
                if fixed + 2 > budget {
                    continue;
                }
                let m_rest = budget - 2 - fixed;

                // Cost of the designated partitions: DP over the i2 selected
                // counts (ascending) into j partitions.
                let (dp_cost, boundaries) = if i2 == 0 {
                    (0u128, Vec::new())
                } else {
                    let ascending: Vec<u64> =
                        ranked[i1..i1 + i2].iter().rev().map(|&(_, c)| c).collect();
                    let ct = CorrelationTable::from_counts(ascending);
                    let sol = partition_dp(&ct, j, c_r, &config.dp);
                    (sol.cost, sol.boundaries)
                };
                let designated_r_pages = (i2 as f64 / b_r).ceil();
                let c_probe = designated_r_pages + dp_cost as f64 / b_s;
                let c_part = mu * (designated_r_pages + (designated_mass as f64 / b_s).ceil());

                // Residual keys handled by DHH/rounded hash with m_rest pages.
                let rest_keys = n_r.saturating_sub(i1 + i2);
                let rest_matches = n_s.saturating_sub(top_mass(i1 + i2));
                let c_rest = g_dhh(rest_keys, rest_matches, spec, m_rest);

                let total = c_probe + c_part + c_rest;
                let better = match &best {
                    Some((cost, ..)) => total < *cost,
                    None => true,
                };
                if better {
                    best = Some((total, i1, i2, m_rest, boundaries));
                }
            }
        }
    }

    let (cost, i1, i2, m_rest, boundaries) =
        best.unwrap_or((f64::INFINITY, 0, 0, budget.saturating_sub(2), Vec::new()));

    // Materialize the plan: K_mem = top-i1 keys, K_disk = next i2 keys split
    // at the DP boundaries (which are expressed over the *ascending* view of
    // those i2 counts).
    let mem_keys: Vec<u64> = ranked[..i1].iter().map(|&(k, _)| k).collect();
    let mut disk_partitions: Vec<Vec<u64>> = Vec::new();
    if i2 > 0 {
        let ascending_keys: Vec<u64> = ranked[i1..i1 + i2].iter().rev().map(|&(k, _)| k).collect();
        let bounds = if boundaries.is_empty() {
            vec![i2]
        } else {
            boundaries
        };
        let mut start = 0usize;
        for &end in &bounds {
            disk_partitions.push(ascending_keys[start..end].to_vec());
            start = end;
        }
    }

    NocapPlan {
        mem_keys,
        disk_partitions,
        m_rest,
        estimated_extra_io: cost,
        estimated_rest_keys: n_r.saturating_sub(i1 + i2),
        estimated_rest_matches: n_s.saturating_sub(top_mass(i1 + i2)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(buffer_pages: usize) -> JoinSpec {
        JoinSpec::paper_synthetic(256, buffer_pages)
    }

    /// MCVs for a Zipf-ish workload: a handful of very hot keys.
    fn skewed_mcvs(k: usize, n_s: u64) -> Vec<(u64, u64)> {
        let mut total = 0u64;
        let mut mcvs = Vec::new();
        for i in 0..k as u64 {
            let count = (n_s / 4) / (i + 1).pow(2) + 1;
            mcvs.push((i, count));
            total += count;
        }
        assert!(total < n_s);
        mcvs
    }

    fn uniform_mcvs(k: usize, per_key: u64) -> Vec<(u64, u64)> {
        (0..k as u64).map(|i| (i, per_key)).collect()
    }

    #[test]
    fn grid_includes_endpoints() {
        assert_eq!(grid(0, 10), vec![0]);
        assert_eq!(grid(5, 100), vec![0, 1, 2, 3, 4, 5]);
        let g = grid(1_000, 16);
        assert_eq!(*g.first().unwrap(), 0);
        assert_eq!(*g.last().unwrap(), 1_000);
        assert!(g.len() <= 16);
        assert!(g.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn plan_respects_the_memory_budget() {
        let s = spec(96);
        let plan = plan_nocap(
            &skewed_mcvs(500, 160_000),
            20_000,
            160_000,
            &s,
            &PlannerConfig::default(),
        );
        assert!(plan.fits_budget(&s), "planner must respect B");
        assert!(plan.m_rest > 0);
    }

    #[test]
    fn skewed_correlation_caches_hot_keys_when_memory_allows() {
        let s = spec(512);
        let plan = plan_nocap(
            &skewed_mcvs(1_000, 160_000),
            20_000,
            160_000,
            &s,
            &PlannerConfig::default(),
        );
        assert!(
            plan.k_mem() > 0,
            "with skew and a reasonable budget the planner should cache hot keys"
        );
        // The hottest MCV (key 0) must be among the cached keys.
        assert!(plan.mem_keys.contains(&0));
    }

    #[test]
    fn uniform_correlation_with_tiny_memory_caches_little() {
        let s = spec(24);
        let plan = plan_nocap(
            &uniform_mcvs(1_000, 8),
            20_000,
            160_000,
            &s,
            &PlannerConfig::default(),
        );
        // Under a uniform correlation there is nothing special to cache; the
        // plan should give (almost) all memory to the residual partitioner.
        assert!(
            plan.k_mem() * 8 <= 160,
            "uniform MCVs should not be worth much caching"
        );
        assert!(plan.m_rest >= s.buffer_pages / 2);
        assert!(plan.fits_budget(&s));
    }

    #[test]
    fn estimated_cost_never_exceeds_the_no_cache_plan() {
        // The i1 = i2 = 0 candidate (pure DHH) is always in the search space,
        // so the chosen plan can only be cheaper or equal.
        let s = spec(128);
        let mcvs = skewed_mcvs(800, 320_000);
        let plan = plan_nocap(&mcvs, 40_000, 320_000, &s, &PlannerConfig::default());
        let no_cache_cost = g_dhh(40_000, 320_000, &s, s.buffer_pages - 2);
        assert!(plan.estimated_extra_io <= no_cache_cost + 1e-6);
    }

    #[test]
    fn more_memory_never_increases_estimated_cost() {
        let mcvs = skewed_mcvs(600, 160_000);
        let cfg = PlannerConfig::default();
        let mut prev = f64::INFINITY;
        for b in [32usize, 64, 128, 256, 512, 1024] {
            let plan = plan_nocap(&mcvs, 20_000, 160_000, &spec(b), &cfg);
            assert!(
                plan.estimated_extra_io <= prev + 1e-6,
                "estimated extra I/O should not grow with memory (B={b})"
            );
            prev = plan.estimated_extra_io;
        }
    }

    #[test]
    fn designated_partitions_hold_the_right_keys() {
        let s = spec(256);
        let mcvs = skewed_mcvs(200, 80_000);
        let plan = plan_nocap(&mcvs, 10_000, 80_000, &s, &PlannerConfig::default());
        // All designated keys must come from the MCV list and not overlap
        // with the cached keys.
        let mem = plan.mem_key_set();
        let mcv_keys: std::collections::HashSet<u64> = mcvs.iter().map(|&(k, _)| k).collect();
        for part in &plan.disk_partitions {
            for key in part {
                assert!(mcv_keys.contains(key));
                assert!(!mem.contains(key));
            }
        }
    }

    #[test]
    fn empty_mcvs_produce_a_pure_rest_plan() {
        let s = spec(64);
        let plan = plan_nocap(&[], 5_000, 40_000, &s, &PlannerConfig::default());
        assert_eq!(plan.k_mem(), 0);
        assert_eq!(plan.k_disk(), 0);
        assert_eq!(plan.m_rest, s.buffer_pages - 2);
        assert_eq!(plan.estimated_rest_keys, 5_000);
    }
}
