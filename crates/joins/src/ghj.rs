//! Grace Hash Join (GHJ).
//!
//! The textbook partitioning join: hash both relations into `B − 1`
//! partitions (one input page, one output-buffer page per partition), then
//! join each partition pair. If an R partition still does not fit the memory
//! budget the pair is either re-partitioned recursively or — following the
//! paper's augmentation — handed to chunk-wise NBJ when that is estimated to
//! be cheaper.

use nocap_model::classic_cost::nbj_cost_best;
use nocap_model::pairwise::nbj_partition_join_filtered;
use nocap_model::{ghj_cost, JoinRunReport, JoinSpec, ProbeBloom};
use nocap_obs::{Obs, Phase};
use nocap_par::{page_shards, run_workers_obs, sum_tasks_obs, SharedWriterSet};
use nocap_storage::device::DeviceRef;
use nocap_storage::{
    BufferPool, IoKind, JoinHashTable, PartitionHandle, PartitionWriter, RadixRouter, Relation,
    SpillGuard,
};

/// SplitMix64 with a per-recursion-level salt so nested partitioning uses an
/// independent hash function (the shared workspace hash, pinned bit-for-bit
/// in `nocap_storage::hash`).
fn level_hash(key: u64, level: u32) -> u64 {
    nocap_storage::hash::mix64_seeded(key, nocap_storage::hash::level_seed_salted(level))
}

/// Grace Hash Join executor.
#[derive(Debug, Clone, Copy)]
pub struct GraceHashJoin {
    spec: JoinSpec,
    /// Maximum recursive partitioning depth before unconditionally falling
    /// back to NBJ (a safety valve, 3 matches any realistic budget).
    max_depth: u32,
    /// Probe-side Bloom pre-filter for the partition-pair NBJs (on by
    /// default; a pure CPU optimization — output and modeled I/O are
    /// unchanged).
    bloom: ProbeBloom,
}

impl GraceHashJoin {
    /// Creates a GHJ operator with the given spec.
    pub fn new(spec: JoinSpec) -> Self {
        GraceHashJoin {
            spec,
            max_depth: 3,
            bloom: ProbeBloom::default(),
        }
    }

    /// Overrides the probe-side Bloom pre-filter knob.
    pub fn with_bloom(mut self, bloom: ProbeBloom) -> Self {
        self.bloom = bloom;
        self
    }

    /// Executes `r ⋈ s`.
    pub fn run(&self, r: &Relation, s: &Relation) -> nocap_storage::Result<JoinRunReport> {
        self.run_obs(r, s, &Obs::off())
    }

    /// [`run`](Self::run) with observability: partition/probe phase spans
    /// and per-partition skew histograms land in the report's trace.
    pub fn run_obs(
        &self,
        r: &Relation,
        s: &Relation,
        obs: &Obs,
    ) -> nocap_storage::Result<JoinRunReport> {
        let spec = &self.spec;
        let device = r.device().clone();
        let _io_trace = obs.attach_io(&device);
        let timer = obs.run_timer();
        let base = device.stats();

        // Partition both inputs once.
        let num_partitions = spec.buffer_pages.saturating_sub(1).max(2);
        let pool = BufferPool::new(spec.buffer_pages);
        let _input_page = pool.reserve(1)?;
        let _output_buffers = pool.reserve(num_partitions.min(pool.available()))?;

        // Adopt each relation's partitions as they finish so a failure while
        // partitioning S or probing deletes R's files too; the guard
        // replaces the old success-path delete loop.
        let mut spill_guard = SpillGuard::new();
        let partition_span = obs.span(Phase::Partition);
        let r_parts = partition_relation_scan(&device, r, spec, num_partitions, 0)?;
        spill_guard.adopt_all(r_parts.iter().cloned());
        let s_parts = partition_relation_scan(&device, s, spec, num_partitions, 0)?;
        spill_guard.adopt_all(s_parts.iter().cloned());
        drop(partition_span);
        let partition_io = device.stats().since(&base);
        record_ghj_skew(obs, &r_parts, &s_parts);

        // Join each pair. The per-chunk probe filters are charged to the
        // pool for the whole probe phase; an exhausted pool turns the
        // filter off instead of failing.
        let bloom_reservation = self.bloom.reserve(&pool);
        let bloom_cfg = clamp_bloom(&self.bloom, &bloom_reservation);
        let probe_base = device.stats();
        let probe_span = obs.span(Phase::Probe);
        let mut output = 0u64;
        for (r_part, s_part) in r_parts.iter().zip(s_parts.iter()) {
            output += self.join_pair(&device, r_part, s_part, &bloom_cfg, 1)?;
        }
        drop(probe_span);
        let probe_io = device.stats().since(&probe_base);

        // Dropping the guard deletes every spill file (not counted as I/O).
        drop(spill_guard);

        obs.gauge_max("buffer_pool_peak_pages", pool.peak() as u64);
        let mut report = JoinRunReport::new("GHJ");
        report.output_records = output;
        report.partition_io = partition_io;
        report.probe_io = probe_io;
        report.finish_run(timer, obs);
        Ok(report)
    }

    /// Executes `r ⋈ s` on `threads` worker threads.
    ///
    /// GHJ's static hash partitioning has no order-dependent state at all,
    /// so the parallel path is the textbook case for the `nocap-par`
    /// machinery: workers shard each relation's pages and route into shared
    /// single-buffer spill writers ([`SharedWriterSet`]), then the
    /// partition pairs are claimed from a work queue. Output and the full
    /// I/O trace are identical to [`run`](Self::run) for every thread
    /// count; `threads == 0` selects [`nocap_par::default_threads`].
    pub fn run_parallel(
        &self,
        r: &Relation,
        s: &Relation,
        threads: usize,
    ) -> nocap_storage::Result<JoinRunReport> {
        self.run_parallel_obs(r, s, threads, &Obs::off())
    }

    /// [`run_parallel`](Self::run_parallel) with observability — phase
    /// spans, per-worker scan spans, per-task probe spans and partition skew
    /// histograms, recorded without touching routing or claim order.
    pub fn run_parallel_obs(
        &self,
        r: &Relation,
        s: &Relation,
        threads: usize,
        obs: &Obs,
    ) -> nocap_storage::Result<JoinRunReport> {
        let threads = if threads == 0 {
            nocap_par::default_threads()
        } else {
            threads
        };
        let spec = &self.spec;
        let device = r.device().clone();
        let _io_trace = obs.attach_io(&device);
        let timer = obs.run_timer();
        let base = device.stats();

        let num_partitions = spec.buffer_pages.saturating_sub(1).max(2);
        let pool = BufferPool::new(spec.buffer_pages);
        let _input_page = pool.reserve(1)?;
        let _output_buffers = pool.reserve(num_partitions.min(pool.available()))?;

        let partition_parallel =
            |relation: &Relation| -> nocap_storage::Result<Vec<PartitionHandle>> {
                let writers = SharedWriterSet::new(
                    device.clone(),
                    relation.layout(),
                    spec.page_size,
                    IoKind::RandWrite,
                    num_partitions,
                );
                let shards = page_shards(relation.num_pages(), threads);
                run_workers_obs(threads, obs, Phase::Partition, |w, _wobs| {
                    // Per-worker radix write buffers: shared-writer pushes
                    // happen in per-partition runs instead of one lock per
                    // record; `⌈n/b⌉` flushes per partition are preserved.
                    let mut router = RadixRouter::new(relation.layout(), num_partitions);
                    let mut scan = relation.scan_range(shards[w].clone());
                    while let Some(page) = scan.next_page()? {
                        for rec in page.record_refs() {
                            let p = (level_hash(rec.key(), 0) % num_partitions as u64) as usize;
                            router.push(p, rec, &mut |p, r| writers.push(p, r))?;
                        }
                    }
                    router.finish(&mut |p, r| writers.push(p, r))?;
                    Ok(())
                })?;
                writers.finish_dense()
            };
        let mut spill_guard = SpillGuard::new();
        let partition_span = obs.span(Phase::Partition);
        let r_parts = partition_parallel(r)?;
        spill_guard.adopt_all(r_parts.iter().cloned());
        let s_parts = partition_parallel(s)?;
        spill_guard.adopt_all(s_parts.iter().cloned());
        drop(partition_span);
        let partition_io = device.stats().since(&base);
        record_ghj_skew(obs, &r_parts, &s_parts);

        // Same probe-filter charge as the sequential path: both executors
        // see the same pool state here, so the clamped filter is identical.
        let bloom_reservation = self.bloom.reserve(&pool);
        let bloom_cfg = clamp_bloom(&self.bloom, &bloom_reservation);
        let probe_base = device.stats();
        let probe_span = obs.span(Phase::Probe);
        let output = sum_tasks_obs(threads, obs, Phase::Probe, r_parts.len(), |i| {
            self.join_pair(&device, &r_parts[i], &s_parts[i], &bloom_cfg, 1)
        })?;
        drop(probe_span);
        let probe_io = device.stats().since(&probe_base);

        // Dropping the guard deletes every spill file (not counted as I/O).
        drop(spill_guard);

        obs.gauge_max("buffer_pool_peak_pages", pool.peak() as u64);
        let mut report = JoinRunReport::new("GHJ");
        report.output_records = output;
        report.partition_io = partition_io;
        report.probe_io = probe_io;
        report.finish_run(timer, obs);
        Ok(report)
    }

    /// Joins one partition pair, re-partitioning recursively when that is
    /// estimated to be cheaper than chunk-wise NBJ.
    fn join_pair(
        &self,
        device: &DeviceRef,
        r_part: &PartitionHandle,
        s_part: &PartitionHandle,
        bloom: &ProbeBloom,
        depth: u32,
    ) -> nocap_storage::Result<u64> {
        let spec = &self.spec;
        if r_part.is_empty() || s_part.is_empty() {
            return Ok(0);
        }
        let fits =
            JoinHashTable::pages_for(r_part.records(), spec.r_layout, spec.page_size, spec.fudge)
                + 2
                <= spec.buffer_pages;
        if fits || depth > self.max_depth {
            return nbj_partition_join_filtered(r_part, s_part, spec, bloom, |_, _| {});
        }
        // The partition is still too large: recurse only if another
        // partitioning pass is estimated to be cheaper than NBJ.
        let nbj = nbj_cost_best(r_part.pages(), s_part.pages(), spec);
        let ghj = ghj_cost(r_part.pages(), s_part.pages(), spec);
        if nbj <= ghj {
            return nbj_partition_join_filtered(r_part, s_part, spec, bloom, |_, _| {});
        }
        let num_partitions = spec.buffer_pages.saturating_sub(1).max(2);
        // Fail-clean recursion: the sub-partitions are deleted when the
        // guard drops, whether the nested joins succeed or not.
        let mut guard = SpillGuard::new();
        let r_sub = partition_handle(device, r_part, spec, num_partitions, depth)?;
        guard.adopt_all(r_sub.iter().cloned());
        let s_sub = partition_handle(device, s_part, spec, num_partitions, depth)?;
        guard.adopt_all(s_sub.iter().cloned());
        let mut output = 0u64;
        for (rp, sp) in r_sub.iter().zip(s_sub.iter()) {
            output += self.join_pair(device, rp, sp, bloom, depth + 1)?;
        }
        Ok(output)
    }
}

/// Clamps the probe-filter page budget to what was actually reserved; a
/// missing reservation turns the filter off.
fn clamp_bloom(bloom: &ProbeBloom, reservation: &Option<nocap_storage::Reservation>) -> ProbeBloom {
    match reservation {
        Some(res) => ProbeBloom::with_pages(bloom.pages.min(res.pages())),
        None => ProbeBloom::off(),
    }
}

/// Records GHJ's first-level partition fan-out histograms (both sides).
fn record_ghj_skew(obs: &Obs, r_parts: &[PartitionHandle], s_parts: &[PartitionHandle]) {
    if !obs.is_recording() {
        return;
    }
    obs.values(
        "partition_records",
        r_parts.iter().map(|h| h.records() as u64),
    );
    obs.values("partition_pages", r_parts.iter().map(|h| h.pages() as u64));
    obs.values(
        "s_partition_records",
        s_parts.iter().map(|h| h.records() as u64),
    );
    obs.count("partitions", r_parts.len() as u64);
}

/// Hash-partitions a stored relation into `m` spill partitions.
fn partition_relation_scan(
    device: &DeviceRef,
    relation: &Relation,
    spec: &JoinSpec,
    m: usize,
    level: u32,
) -> nocap_storage::Result<Vec<PartitionHandle>> {
    let mut writers: Vec<PartitionWriter> = (0..m)
        .map(|_| {
            PartitionWriter::new(
                device.clone(),
                relation.layout(),
                spec.page_size,
                IoKind::RandWrite,
            )
        })
        .collect();
    // Cache-line-sized per-partition write buffers in front of the spill
    // writers: per-partition arrival order is preserved, so partition files
    // are byte-identical to direct pushes.
    let mut router = RadixRouter::new(relation.layout(), m);
    let mut scan = relation.scan();
    while let Some(page) = scan.next_page()? {
        for rec in page.record_refs() {
            let p = (level_hash(rec.key(), level) % m as u64) as usize;
            router.push(p, rec, &mut |p, r| writers[p].push_ref(r))?;
        }
    }
    router.finish(&mut |p, r| writers[p].push_ref(r))?;
    // Fail-clean finish: a mid-loop error deletes the handles produced so
    // far (unfinished writers delete their own files on drop).
    let mut guard = SpillGuard::new();
    let mut out = Vec::with_capacity(writers.len());
    for w in writers {
        let h = w.finish()?;
        guard.adopt(h.clone());
        out.push(h);
    }
    let _ = guard.release();
    Ok(out)
}

/// Hash-partitions an existing spill partition into `m` sub-partitions
/// (used by recursive re-partitioning).
fn partition_handle(
    device: &DeviceRef,
    handle: &PartitionHandle,
    spec: &JoinSpec,
    m: usize,
    level: u32,
) -> nocap_storage::Result<Vec<PartitionHandle>> {
    let mut writers: Vec<Option<PartitionWriter>> = (0..m).map(|_| None).collect();
    let mut layout = None;
    let mut reader = handle.read(IoKind::SeqRead);
    while let Some(page) = reader.next_page()? {
        let page_layout = page.record_layout();
        layout.get_or_insert(page_layout);
        for rec in page.record_refs() {
            let p = (level_hash(rec.key(), level) % m as u64) as usize;
            let writer = writers[p].get_or_insert_with(|| {
                PartitionWriter::new(
                    device.clone(),
                    page_layout,
                    spec.page_size,
                    IoKind::RandWrite,
                )
            });
            writer.push_ref(rec)?;
        }
    }
    let layout = layout.unwrap_or(spec.r_layout);
    // Fail-clean finish, as in `partition_relation_scan`.
    let mut guard = SpillGuard::new();
    let mut out = Vec::with_capacity(writers.len());
    for w in writers {
        let h = match w {
            Some(w) => w.finish()?,
            None => PartitionWriter::new(device.clone(), layout, spec.page_size, IoKind::RandWrite)
                .finish()?,
        };
        guard.adopt(h.clone());
        out.push(h);
    }
    let _ = guard.release();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_join_count;
    use crate::testutil::build_workload;
    use nocap_storage::SimDevice;

    #[test]
    fn matches_naive_join_uniform() {
        let dev = SimDevice::new_ref();
        let spec = JoinSpec::paper_synthetic(128, 24);
        let counts = |_k: u64| 3u64;
        let (r, s) = build_workload(dev.clone(), &spec, 2_000, counts);
        let expected = naive_join_count(&r, &s).unwrap();
        dev.reset_stats();
        let report = GraceHashJoin::new(spec).run(&r, &s).unwrap();
        assert_eq!(report.output_records, expected);
    }

    #[test]
    fn matches_naive_join_skewed() {
        let dev = SimDevice::new_ref();
        let spec = JoinSpec::paper_synthetic(128, 32);
        let counts = |k: u64| if k < 10 { 150 } else { 1 };
        let (r, s) = build_workload(dev.clone(), &spec, 1_500, counts);
        let expected = naive_join_count(&r, &s).unwrap();
        dev.reset_stats();
        let report = GraceHashJoin::new(spec).run(&r, &s).unwrap();
        assert_eq!(report.output_records, expected);
    }

    #[test]
    fn partition_phase_writes_both_relations_once() {
        let dev = SimDevice::new_ref();
        let spec = JoinSpec::paper_synthetic(256, 32);
        let counts = |_k: u64| 2u64;
        let (r, s) = build_workload(dev.clone(), &spec, 3_000, counts);
        dev.reset_stats();
        let report = GraceHashJoin::new(spec).run(&r, &s).unwrap();
        // Every record of R and S is written to some partition exactly once
        // (partition page counts may add a page of slack per partition).
        let writes = report.partition_io.writes() as usize;
        let min_expected = r.num_pages() + s.num_pages();
        assert!(writes >= min_expected);
        assert!(
            writes <= min_expected + 2 * (spec.buffer_pages - 1),
            "writes {writes} exceed one page of slack per partition"
        );
        // And those writes are random writes (μ-weighted in the cost model).
        assert_eq!(report.partition_io.seq_writes, 0);
    }

    #[test]
    fn parallel_ghj_matches_sequential_io_and_output() {
        let spec = JoinSpec::paper_synthetic(128, 32);
        let counts = |k: u64| if k < 12 { 120 } else { 2 };
        let dev = SimDevice::new_ref();
        let (r, s) = build_workload(dev.clone(), &spec, 2_000, counts);
        dev.reset_stats();
        let sequential = GraceHashJoin::new(spec).run(&r, &s).unwrap();
        for threads in [1usize, 2, 4] {
            let dev = SimDevice::new_ref();
            let (r, s) = build_workload(dev.clone(), &spec, 2_000, counts);
            dev.reset_stats();
            let parallel = GraceHashJoin::new(spec)
                .run_parallel(&r, &s, threads)
                .unwrap();
            assert_eq!(parallel.output_records, sequential.output_records);
            assert_eq!(
                parallel.partition_io, sequential.partition_io,
                "partition I/O differs at {threads} threads"
            );
            assert_eq!(
                parallel.probe_io, sequential.probe_io,
                "probe I/O differs at {threads} threads"
            );
        }
    }

    #[test]
    fn ghj_costs_more_io_than_nbj_when_r_fits_in_memory() {
        let dev = SimDevice::new_ref();
        let spec = JoinSpec::paper_synthetic(128, 512);
        let counts = |_k: u64| 2u64;
        let (r, s) = build_workload(dev.clone(), &spec, 1_000, counts);
        dev.reset_stats();
        let ghj = GraceHashJoin::new(spec).run(&r, &s).unwrap();
        dev.reset_stats();
        let nbj = crate::nbj::NestedBlockJoin::new(spec).run(&r, &s).unwrap();
        assert_eq!(ghj.output_records, nbj.output_records);
        assert!(
            ghj.total_ios() > nbj.total_ios(),
            "partitioning is wasted work when R fits in memory"
        );
    }
}
