//! Sequential quota-destaging staging — the single-threaded counterpart of
//! the concurrent [`ParallelStager`](crate::stage::ParallelStager).
//!
//! Both NOCAP's residual partitioner and DHH's partitioner implement the
//! same mechanism: partitions stage records in memory (columnar
//! [`RecordBatch`] arenas), each partition owns a fixed quota of staging
//! pages ([`crate::quota::even_caps`]), and the moment a partition's staged
//! footprint — charged with the `hash_table_pages` formula — exceeds its
//! quota, the partition is destaged into a spill writer and its page-out
//! bit is set. Only the *routing* differs (rounded hash vs modulo hash),
//! so the mechanism lives here once and the executors wrap it with their
//! router.

use nocap_model::JoinSpec;
use nocap_storage::device::DeviceRef;
use nocap_storage::{
    IoKind, PartitionHandle, PartitionWriter, RecordBatch, RecordLayout, RecordRef, Result,
    SpillGuard,
};

/// What the stager hands back after the build-side pass.
pub struct QuotaStagerBuild {
    /// Records of partitions that stayed in memory, merged into one
    /// columnar arena (destined for the caller's in-memory hash table).
    pub staged_records: RecordBatch,
    /// Spilled partitions by partition id (`None` if the partition stayed
    /// in memory).
    pub spilled: Vec<Option<PartitionHandle>>,
    /// Page-out bits, by partition id.
    pub pob: Vec<bool>,
}

/// Deterministic sequential quota-destaging stager.
///
/// The caller routes each record to a partition id; the stager stages it
/// (key push + payload `memcpy`, no per-record allocation) and destages the
/// partition iff `hash_table_pages(n_p) > cap_p` — a function of the
/// partition's total record count only, so the destaged set is independent
/// of arrival order.
pub struct QuotaStager {
    device: DeviceRef,
    spec: JoinSpec,
    layout: RecordLayout,
    caps: Vec<usize>,
    staged: Vec<RecordBatch>,
    staged_pages: Vec<usize>,
    staged_pages_total: usize,
    writers: Vec<Option<PartitionWriter>>,
    pob: Vec<bool>,
    spilled_count: usize,
}

impl QuotaStager {
    /// Creates a stager for `caps.len()` partitions; `caps[p]` is partition
    /// `p`'s staging quota in pages.
    pub fn new(device: DeviceRef, spec: JoinSpec, layout: RecordLayout, caps: Vec<usize>) -> Self {
        let num_partitions = caps.len();
        QuotaStager {
            device,
            spec,
            layout,
            caps,
            staged: vec![RecordBatch::new(layout); num_partitions],
            staged_pages: vec![0; num_partitions],
            staged_pages_total: 0,
            writers: (0..num_partitions).map(|_| None).collect(),
            pob: vec![false; num_partitions],
            spilled_count: 0,
        }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.staged.len()
    }

    /// Number of partitions destaged to disk so far.
    pub fn spilled_partitions(&self) -> usize {
        self.spilled_count
    }

    /// Current memory use in pages (staged data + spilled output buffers).
    pub fn pages_in_use(&self) -> usize {
        self.staged_pages_total + self.spilled_count
    }

    /// Stages one borrowed record in partition `p` (a key push plus payload
    /// `memcpy` into the partition's arena), destaging the partition if its
    /// footprint now exceeds its quota.
    pub fn insert(&mut self, p: usize, rec: RecordRef<'_>) -> Result<()> {
        if self.pob[p] {
            self.writers[p]
                .as_mut()
                .expect("destaged partition has a writer")
                .push_ref(rec)?;
            return Ok(());
        }
        self.staged[p].push(rec);
        let new_pages = self.spec.hash_table_pages(self.staged[p].len()).max(1);
        self.staged_pages_total += new_pages - self.staged_pages[p];
        self.staged_pages[p] = new_pages;
        if new_pages > self.caps[p] {
            self.destage(p)?;
        }
        debug_assert!(
            self.pages_in_use() <= self.caps.iter().sum::<usize>(),
            "staged pages + spill buffers must stay within the quota sum"
        );
        Ok(())
    }

    /// Destages partition `p`: staged records drain into a fresh spill
    /// writer and the partition's memory drops to the writer's single
    /// output-buffer page.
    fn destage(&mut self, p: usize) -> Result<()> {
        let mut writer = PartitionWriter::new(
            self.device.clone(),
            self.layout,
            self.spec.page_size,
            IoKind::RandWrite,
        );
        for rec in self.staged[p].iter() {
            writer.push_ref(rec)?;
        }
        self.staged[p].clear();
        self.staged_pages_total -= self.staged_pages[p];
        self.staged_pages[p] = 0;
        self.writers[p] = Some(writer);
        self.pob[p] = true;
        self.spilled_count += 1;
        Ok(())
    }

    /// Finishes the pass: remaining staged records merge into one arena for
    /// the caller's in-memory hash table, spilled partitions become handles.
    ///
    /// Fail-clean: if any writer fails to finish, the handles produced so
    /// far are deleted (and the remaining unfinished writers delete their
    /// own files on drop) before the error is returned.
    pub fn finish(self) -> Result<QuotaStagerBuild> {
        let mut staged_records = RecordBatch::new(self.layout);
        for mut batch in self.staged {
            staged_records.append(&mut batch);
        }
        let mut guard = SpillGuard::new();
        let mut spilled = Vec::with_capacity(self.writers.len());
        for writer in self.writers {
            spilled.push(match writer {
                Some(w) => {
                    let handle = w.finish()?;
                    guard.adopt(handle.clone());
                    Some(handle)
                }
                None => None,
            });
        }
        let _ = guard.release();
        Ok(QuotaStagerBuild {
            staged_records,
            spilled,
            pob: self.pob,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quota::even_caps;
    use nocap_storage::{Record, SimDevice};

    #[test]
    fn destaging_depends_only_on_partition_counts() {
        let spec = JoinSpec::paper_synthetic(128, 16);
        let run = |keys: &[u64]| {
            let device = SimDevice::new_ref();
            let mut stager =
                QuotaStager::new(device.clone(), spec, spec.r_layout, even_caps(10, 5));
            for &k in keys {
                let rec = Record::with_fill(k, 120, 0);
                stager
                    .insert((k % 5) as usize, rec.as_record_ref())
                    .unwrap();
                assert!(stager.pages_in_use() <= 10, "budget blown");
            }
            let build = stager.finish().unwrap();
            let spilled: usize = build.spilled.iter().flatten().map(|h| h.records()).sum();
            assert_eq!(spilled + build.staged_records.len(), keys.len());
            (build.pob, device.stats().total())
        };
        let forward: Vec<u64> = (0..2_000).collect();
        let mut reversed = forward.clone();
        reversed.reverse();
        assert_eq!(run(&forward), run(&reversed), "must be order-independent");
    }

    #[test]
    fn small_partitions_stay_staged() {
        let spec = JoinSpec::paper_synthetic(128, 64);
        let device = SimDevice::new_ref();
        let mut stager = QuotaStager::new(device.clone(), spec, spec.r_layout, even_caps(40, 4));
        for k in 0..100u64 {
            let rec = Record::with_fill(k, 120, 0);
            stager
                .insert((k % 4) as usize, rec.as_record_ref())
                .unwrap();
        }
        assert_eq!(stager.spilled_partitions(), 0);
        let build = stager.finish().unwrap();
        assert_eq!(build.staged_records.len(), 100);
        assert_eq!(device.stats().writes(), 0);
    }
}
