//! Shared run report produced by every join executor.
//!
//! Both the baseline joins (`nocap-joins`) and NOCAP itself (`nocap`) return
//! a [`JoinRunReport`] so the experiment harness can tabulate #I/Os, derived
//! latency and output cardinality uniformly — the three columns every figure
//! of the paper is built from.

use nocap_obs::{ExecutionTrace, Obs, RunTimer};
use nocap_storage::{DeviceProfile, IoStats};

/// Result of executing one join.
#[derive(Debug, Clone)]
pub struct JoinRunReport {
    /// Human-readable algorithm name ("NOCAP", "DHH", "GHJ", …).
    pub algorithm: String,
    /// Number of joined output tuples produced.
    pub output_records: u64,
    /// I/Os performed during the partitioning (build-side) phase.
    pub partition_io: IoStats,
    /// I/Os performed during the probe / partition-wise join phase.
    pub probe_io: IoStats,
    /// Wall-clock seconds spent in CPU work as measured by the executor
    /// (hashing, sorting, probing). Reported separately because the paper's
    /// TPC-H discussion distinguishes I/O time from total time.
    pub cpu_seconds: f64,
    /// Structured observability trace: per-phase spans, skew histograms and
    /// worker timelines. `None` unless the run was observed with a recording
    /// [`Obs`] handle. Excluded from equality — timing must never
    /// participate in determinism comparisons.
    pub trace: Option<ExecutionTrace>,
}

/// Equality over the deterministic payload only: the `trace` field carries
/// wall-clock data and two otherwise-identical runs would never compare
/// equal if it were included.
impl PartialEq for JoinRunReport {
    fn eq(&self, other: &Self) -> bool {
        self.algorithm == other.algorithm
            && self.output_records == other.output_records
            && self.partition_io == other.partition_io
            && self.probe_io == other.probe_io
            && self.cpu_seconds == other.cpu_seconds
    }
}

impl JoinRunReport {
    /// Creates an empty report for the given algorithm.
    pub fn new(algorithm: impl Into<String>) -> Self {
        JoinRunReport {
            algorithm: algorithm.into(),
            output_records: 0,
            partition_io: IoStats::new(),
            probe_io: IoStats::new(),
            cpu_seconds: 0.0,
            trace: None,
        }
    }

    /// Finalizes the report at the end of a run: stops the whole-run
    /// stopwatch into `cpu_seconds` and attaches the recorded trace, if any.
    /// Every executor ends with this, so CPU time is measured once,
    /// consistently, instead of by per-executor stopwatch code.
    pub fn finish_run(&mut self, timer: RunTimer, obs: &Obs) {
        self.cpu_seconds = timer.stop(obs);
        self.trace = obs.take_trace();
    }

    /// Total I/O trace of the run.
    pub fn total_io(&self) -> IoStats {
        self.partition_io + self.probe_io
    }

    /// Total number of page I/Os (the paper's "#I/Os" metric).
    pub fn total_ios(&self) -> u64 {
        self.total_io().total()
    }

    /// Estimated I/O latency in seconds under the given device profile.
    pub fn io_latency_secs(&self, device: &DeviceProfile) -> f64 {
        device.trace_latency_secs(&self.total_io())
    }

    /// Estimated total latency (I/O + measured CPU time) in seconds.
    pub fn total_latency_secs(&self, device: &DeviceProfile) -> f64 {
        self.io_latency_secs(device) + self.cpu_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocap_storage::IoKind;

    #[test]
    fn totals_combine_both_phases() {
        let mut report = JoinRunReport::new("TEST");
        report.partition_io.record_many(IoKind::RandWrite, 10);
        report.probe_io.record_many(IoKind::SeqRead, 30);
        assert_eq!(report.total_ios(), 40);
        assert_eq!(report.total_io().rand_writes, 10);
        assert_eq!(report.total_io().seq_reads, 30);
    }

    #[test]
    fn latency_adds_cpu_time() {
        let mut report = JoinRunReport::new("TEST");
        report.probe_io.record_many(IoKind::SeqRead, 1000);
        report.cpu_seconds = 0.5;
        let dev = DeviceProfile::ssd_no_sync();
        let io_only = report.io_latency_secs(&dev);
        assert!(io_only > 0.0);
        assert!((report.total_latency_secs(&dev) - (io_only + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn equality_ignores_the_trace() {
        let obs = Obs::recording();
        let timer = obs.run_timer();
        obs.count("probe_hits", 3);
        let mut observed = JoinRunReport::new("TEST");
        observed.finish_run(timer, &obs);
        assert!(observed.trace.is_some(), "recording run must carry a trace");
        let mut blind = observed.clone();
        blind.trace = None;
        assert_eq!(observed, blind, "trace must not participate in equality");
    }

    #[test]
    fn finish_run_without_recording_leaves_no_trace() {
        let obs = Obs::off();
        let timer = obs.run_timer();
        let mut report = JoinRunReport::new("TEST");
        report.finish_run(timer, &obs);
        assert!(report.trace.is_none());
        assert!(report.cpu_seconds >= 0.0);
    }
}
