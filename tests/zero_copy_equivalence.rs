//! Zero-copy pipeline equivalence: the refactored executors must produce
//! the same join output AND the same per-phase modeled I/O as the
//! pre-refactor record pipelines.
//!
//! `legacy_nocap_run` below is a faithful reproduction of the NOCAP
//! executor as it existed before the zero-copy refactor: records are
//! materialized through the owned-record iterator path (`Record::read_from`
//! per record — one heap allocation each), the in-memory build side is a
//! `HashMap<u64, Vec<Record>>`, and the residual partitioner stages owned
//! `Vec<Record>`s. Everything that drives the *modeled I/O* — the plan, the
//! quota geometry, the rounded-hash router, the spill-page accounting, the
//! partition-wise probe — is shared, so if the zero-copy path routes even
//! one record differently, a phase trace diverges and this suite fails.
//!
//! `legacy_smj_run` does the same for the external sorter: run generation
//! through owned `Vec<Record>` chunk buffers with a stable sort, heap-based
//! (`BinaryHeap<Reverse<(key, run)>>`) merge passes and a fused merge-join
//! over peekable owned-record merges (`nocap_bench::cpu::LegacySorter` /
//! `merge_join_legacy`) — pinning the arena sorter + loser-tree rewrite to
//! the exact output and per-phase I/O of the pre-rewrite SMJ.
//!
//! Coverage: skewed (Zipf 1.1), uniform and JCC-H (tuned skew) workloads,
//! each checked against the sequential `run` and `run_parallel` at 1, 2 and
//! 4 threads.

use std::collections::HashMap;

use nocap_bench::cpu::{merge_join_legacy, LegacySorter};
use nocap_suite::joins::SortMergeJoin;
use nocap_suite::model::pairwise::smart_partition_join;
use nocap_suite::model::JoinSpec;
use nocap_suite::nocap::{plan_nocap, NocapConfig, NocapJoin, RestGeometry};
use nocap_suite::storage::{
    BufferPool, IoKind, IoStats, PartitionHandle, PartitionWriter, Record, Relation,
};
use nocap_suite::workload::jcch::{self, JcchConfig, JcchSkew};
use nocap_suite::workload::{synthetic, Correlation, GeneratedWorkload, SyntheticConfig};

/// The pre-refactor NOCAP executor: owned records everywhere, map-of-vecs
/// build side, `Vec<Record>` staging. Mirrors `NocapJoin::run_with_plan`
/// line for line, including every buffer-pool reservation, so the residual
/// budget and the quota geometry are identical.
fn legacy_nocap_run(
    spec: &JoinSpec,
    config: &NocapConfig,
    r: &Relation,
    s: &Relation,
    mcvs: &[(u64, u64)],
) -> (u64, IoStats, IoStats) {
    let plan = plan_nocap(
        mcvs,
        r.num_records(),
        s.num_records() as u64,
        spec,
        &config.planner,
    );
    let device = r.device().clone();
    let pool = BufferPool::new(spec.buffer_pages);
    let _io_pages = pool.reserve(2).unwrap();
    let _fixed = pool
        .reserve(plan.fixed_memory_pages(spec).min(pool.available()))
        .unwrap();
    let rest_budget = pool.available();
    let base_stats = device.stats();

    let mem_set = plan.mem_key_set();
    let disk_map = plan.disk_map();
    let m_disk = plan.num_designated();

    let geometry = RestGeometry::new(
        spec,
        rest_budget,
        plan.estimated_rest_keys,
        config.planner.rh_params,
    );
    let num_rest = geometry.num_partitions();

    // ---- Phase 1: partition R (owned records, map build side) -----------
    let mut ht_mem: HashMap<u64, Vec<Record>> = HashMap::new();
    let mut r_disk_writers: Vec<PartitionWriter> = (0..m_disk)
        .map(|_| {
            PartitionWriter::new(
                device.clone(),
                r.layout(),
                spec.page_size,
                IoKind::RandWrite,
            )
        })
        .collect();
    let mut staged: Vec<Vec<Record>> = vec![Vec::new(); num_rest];
    let mut rest_writers: Vec<Option<PartitionWriter>> = (0..num_rest).map(|_| None).collect();
    let mut pob = vec![false; num_rest];
    for rec in r.scan() {
        let rec = rec.unwrap();
        if mem_set.contains(&rec.key()) {
            ht_mem.entry(rec.key()).or_default().push(rec);
        } else if let Some(&pid) = disk_map.get(&rec.key()) {
            r_disk_writers[pid as usize].push(&rec).unwrap();
        } else {
            let p = geometry.rh.partition_of(rec.key());
            if pob[p] {
                rest_writers[p].as_mut().unwrap().push(&rec).unwrap();
                continue;
            }
            staged[p].push(rec);
            if spec.hash_table_pages(staged[p].len()).max(1) > geometry.caps[p] {
                // Destage: drain the staged records into a fresh writer.
                let mut writer = PartitionWriter::new(
                    device.clone(),
                    r.layout(),
                    spec.page_size,
                    IoKind::RandWrite,
                );
                for staged_rec in staged[p].drain(..) {
                    writer.push(&staged_rec).unwrap();
                }
                rest_writers[p] = Some(writer);
                pob[p] = true;
            }
        }
    }
    for records in staged {
        for rec in records {
            ht_mem.entry(rec.key()).or_default().push(rec);
        }
    }
    let r_disk_handles: Vec<PartitionHandle> = r_disk_writers
        .into_iter()
        .map(|w| w.finish().unwrap())
        .collect();
    let rest_handles: Vec<Option<PartitionHandle>> = rest_writers
        .into_iter()
        .map(|w| w.map(|w| w.finish().unwrap()))
        .collect();

    // ---- Phase 2: partition / probe S ------------------------------------
    let mut output = 0u64;
    let mut s_disk_writers: Vec<PartitionWriter> = (0..m_disk)
        .map(|_| {
            PartitionWriter::new(
                device.clone(),
                s.layout(),
                spec.page_size,
                IoKind::RandWrite,
            )
        })
        .collect();
    let mut s_rest_writers: Vec<Option<PartitionWriter>> = pob
        .iter()
        .map(|&spilled| {
            spilled.then(|| {
                PartitionWriter::new(
                    device.clone(),
                    s.layout(),
                    spec.page_size,
                    IoKind::RandWrite,
                )
            })
        })
        .collect();
    for rec in s.scan() {
        let rec = rec.unwrap();
        if let Some(&pid) = disk_map.get(&rec.key()) {
            s_disk_writers[pid as usize].push(&rec).unwrap();
            continue;
        }
        if let Some(matches) = ht_mem.get(&rec.key()) {
            output += matches.len() as u64;
            continue;
        }
        let part = geometry.rh.partition_of(rec.key());
        if pob[part] {
            s_rest_writers[part].as_mut().unwrap().push(&rec).unwrap();
        }
    }
    let partition_io = device.stats().since(&base_stats);

    // ---- Phase 3: partition-wise joins ------------------------------------
    let probe_base = device.stats();
    let s_disk_handles: Vec<PartitionHandle> = s_disk_writers
        .into_iter()
        .map(|w| w.finish().unwrap())
        .collect();
    for (r_part, s_part) in r_disk_handles.iter().zip(s_disk_handles.iter()) {
        output += smart_partition_join(r_part, s_part, spec, 1).unwrap();
    }
    for (idx, maybe_r) in rest_handles.iter().enumerate() {
        let Some(r_part) = maybe_r else { continue };
        let Some(s_writer) = s_rest_writers[idx].take() else {
            continue;
        };
        let s_part = s_writer.finish().unwrap();
        output += smart_partition_join(r_part, &s_part, spec, 1).unwrap();
        s_part.delete().unwrap();
    }
    let probe_io = device.stats().since(&probe_base);

    for h in r_disk_handles.into_iter().chain(s_disk_handles) {
        h.delete().unwrap();
    }
    for h in rest_handles.into_iter().flatten() {
        h.delete().unwrap();
    }
    (output, partition_io, probe_io)
}

/// The pre-rewrite SMJ executor: owned-record run generation (stable
/// `Vec<Record>` chunk sorts), heap-based merge passes, and the fused
/// merge-join over peekable owned-record merge iterators. Mirrors the old
/// `SortMergeJoin::run` line for line — including the `.max(4)` budget
/// fallback and the size-proportional fan-in split — so output and
/// per-phase I/O pin the arena sorter + loser-tree rewrite exactly.
fn legacy_smj_run(spec: &JoinSpec, r: &Relation, s: &Relation) -> (u64, IoStats, IoStats) {
    let device = r.device().clone();
    let base = device.stats();

    let budget = spec.buffer_pages.max(4);
    let fan_in = (budget - 1).max(4);
    let total_pages = (r.num_pages() + s.num_pages()).max(1);
    let r_share = ((fan_in * r.num_pages()) / total_pages).clamp(2, fan_in - 2);
    let s_share = (fan_in - r_share).max(2);

    let mut r_sorter = LegacySorter::new(device.clone(), budget);
    let r_runs = r_sorter.sort_to_runs(r, r_share).unwrap();
    let mut s_sorter = LegacySorter::new(device.clone(), budget);
    let s_runs = s_sorter.sort_to_runs(s, s_share).unwrap();
    let partition_io = device.stats().since(&base);

    let probe_base = device.stats();
    let output = merge_join_legacy(&r_runs, &s_runs).unwrap();
    let probe_io = device.stats().since(&probe_base);

    for run in r_runs.into_iter().chain(s_runs) {
        run.delete().unwrap();
    }
    (output, partition_io, probe_io)
}

enum Workload {
    Synthetic(Correlation),
    Jcch(JcchSkew),
}

/// Generates the workload fresh on its own device (same seed → identical
/// relations).
fn generate(workload: &Workload, record_bytes: usize) -> GeneratedWorkload {
    let device = nocap_suite::storage::SimDevice::new_ref();
    let wl = match workload {
        Workload::Synthetic(correlation) => {
            let config = SyntheticConfig {
                n_r: 5_000,
                n_s: 40_000,
                record_bytes,
                correlation: *correlation,
                mcv_count: 250,
                seed: 0xEC0,
            };
            synthetic::generate(device.clone(), &config).expect("synthetic workload")
        }
        Workload::Jcch(skew) => {
            let config = JcchConfig {
                n_orders: 5_000,
                n_lineitems: 40_000,
                skew: *skew,
                record_bytes,
                mcv_count: 250,
                seed: 0x1CC4,
            };
            jcch::generate(device.clone(), &config).expect("jcch workload")
        }
    };
    device.reset_stats();
    wl
}

#[test]
fn zero_copy_executors_match_the_legacy_pipeline_exactly() {
    let record_bytes = 128;
    let workloads = [
        (
            "zipf_1.1",
            Workload::Synthetic(Correlation::Zipf { alpha: 1.1 }),
        ),
        ("uniform", Workload::Synthetic(Correlation::Uniform)),
        ("jcch_tuned", Workload::Jcch(JcchSkew::Tuned)),
    ];
    for (name, workload) in &workloads {
        for budget in [32usize, 96] {
            let spec = JoinSpec::paper_synthetic(record_bytes, budget);
            let config = NocapConfig::default();
            let join = NocapJoin::new(spec, config);

            // The pre-refactor reference.
            let wl = generate(workload, record_bytes);
            let (legacy_out, legacy_part, legacy_probe) =
                legacy_nocap_run(&spec, &config, &wl.r, &wl.s, &wl.mcvs);
            assert_eq!(
                legacy_out,
                wl.expected_join_output(),
                "{name}/B={budget}: legacy reference must be correct"
            );

            // Sequential zero-copy executor.
            let wl = generate(workload, record_bytes);
            let seq = join.run(&wl.r, &wl.s, &wl.mcvs).expect("run");
            assert_eq!(
                seq.output_records, legacy_out,
                "{name}/B={budget}: output diverged from the legacy pipeline"
            );
            assert_eq!(
                seq.partition_io, legacy_part,
                "{name}/B={budget}: partition-phase I/O diverged"
            );
            assert_eq!(
                seq.probe_io, legacy_probe,
                "{name}/B={budget}: probe-phase I/O diverged"
            );

            // Parallel zero-copy executor at 1, 2 and 4 workers.
            for threads in [1usize, 2, 4] {
                let wl = generate(workload, record_bytes);
                let par = join
                    .run_parallel(&wl.r, &wl.s, &wl.mcvs, threads)
                    .expect("run_parallel");
                assert_eq!(
                    par.output_records, legacy_out,
                    "{name}/B={budget}/n={threads}: output diverged"
                );
                assert_eq!(
                    par.partition_io, legacy_part,
                    "{name}/B={budget}/n={threads}: partition-phase I/O diverged"
                );
                assert_eq!(
                    par.probe_io, legacy_probe,
                    "{name}/B={budget}/n={threads}: probe-phase I/O diverged"
                );
            }
        }
    }
}

#[test]
fn arena_sorter_matches_the_legacy_sorter_pipeline_exactly() {
    let record_bytes = 128;
    let workloads = [
        (
            "zipf_1.1",
            Workload::Synthetic(Correlation::Zipf { alpha: 1.1 }),
        ),
        ("uniform", Workload::Synthetic(Correlation::Uniform)),
        ("jcch_tuned", Workload::Jcch(JcchSkew::Tuned)),
    ];
    for (name, workload) in &workloads {
        for budget in [32usize, 96] {
            let spec = JoinSpec::paper_synthetic(record_bytes, budget);
            let smj = SortMergeJoin::new(spec);

            // The pre-rewrite reference: owned-record sorter + heap merge.
            let wl = generate(workload, record_bytes);
            let (legacy_out, legacy_part, legacy_probe) = legacy_smj_run(&spec, &wl.r, &wl.s);
            assert_eq!(
                legacy_out,
                wl.expected_join_output(),
                "{name}/B={budget}: legacy SMJ reference must be correct"
            );

            // Sequential arena sorter + loser-tree merge.
            let wl = generate(workload, record_bytes);
            let seq = smj.run(&wl.r, &wl.s).expect("run");
            assert_eq!(
                seq.output_records, legacy_out,
                "{name}/B={budget}: SMJ output diverged from the legacy sorter"
            );
            assert_eq!(
                seq.partition_io, legacy_part,
                "{name}/B={budget}: sort-phase I/O diverged from the legacy sorter"
            );
            assert_eq!(
                seq.probe_io, legacy_probe,
                "{name}/B={budget}: fused-merge I/O diverged from the legacy sorter"
            );

            // Parallel run generation at 1, 2 and 4 workers.
            for threads in [1usize, 2, 4] {
                let wl = generate(workload, record_bytes);
                let par = smj
                    .run_parallel(&wl.r, &wl.s, threads)
                    .expect("run_parallel");
                assert_eq!(
                    par.output_records, legacy_out,
                    "{name}/B={budget}/n={threads}: SMJ output diverged"
                );
                assert_eq!(
                    par.partition_io, legacy_part,
                    "{name}/B={budget}/n={threads}: sort-phase I/O diverged"
                );
                assert_eq!(
                    par.probe_io, legacy_probe,
                    "{name}/B={budget}/n={threads}: fused-merge I/O diverged"
                );
            }
        }
    }
}
