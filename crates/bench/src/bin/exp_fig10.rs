//! Figure 10: robustness to noisy MCV statistics.
//!
//! Gaussian noise with σ = n_S / n_R is added to every CT entry before the
//! MCVs are extracted; NOCAP, DHH and Histojoin are then run with the noisy
//! statistics and compared against the exact-statistics run.

use nocap_bench::harness::{print_series_block, run_algorithms, AlgorithmSet};
use nocap_model::JoinSpec;
use nocap_storage::{DeviceProfile, SimDevice};
use nocap_workload::{noisy_mcvs, synthetic, Correlation, SyntheticConfig};

fn main() {
    let n_r = 20_000usize;
    let n_s = 160_000usize;
    let record_bytes = 256usize;
    let device_profile = DeviceProfile::osync_off();
    let sigma = n_s as f64 / n_r as f64;

    for (name, correlation) in [
        ("uniform", Correlation::Uniform),
        ("zipf_0.7", Correlation::Zipf { alpha: 0.7 }),
    ] {
        let device = SimDevice::new_ref();
        let config = SyntheticConfig {
            n_r,
            n_s,
            record_bytes,
            correlation,
            mcv_count: n_r / 20,
            seed: 0x0CA9,
        };
        let mut workload = synthetic::generate(device, &config).expect("workload");
        let exact = workload.mcvs.clone();
        let noisy = noisy_mcvs(&workload.ct, config.mcv_count, sigma, 0xF16);

        let set = AlgorithmSet {
            nocap: true,
            dhh: true,
            histojoin: true,
            ghj: false,
            smj: false,
        };
        let series = ["NOCAP", "DHH", "Histojoin"];
        let mut exact_rows = Vec::new();
        let mut noisy_rows = Vec::new();
        let pages_r = JoinSpec::paper_synthetic(record_bytes, 64).pages_r(n_r);
        let mut budgets = Vec::new();
        let mut b = ((pages_r as f64 * 1.02).sqrt() * 0.5).ceil() as usize;
        while b < pages_r {
            budgets.push(b);
            b *= 2;
        }
        budgets.push(pages_r);

        for &budget in &budgets {
            let spec = JoinSpec::paper_synthetic(record_bytes, budget);
            workload.mcvs = exact.clone();
            let exact_results = run_algorithms(&workload, &spec, &device_profile, &set);
            workload.mcvs = noisy.clone();
            let noisy_results = run_algorithms(&workload, &spec, &device_profile, &set);
            let find = |rs: &[nocap_bench::harness::Measurement], n: &str| {
                rs.iter()
                    .find(|m| m.algorithm == n)
                    .map(|m| m.total_latency_secs)
            };
            exact_rows.push((
                budget.to_string(),
                series.iter().map(|&s| find(&exact_results, s)).collect(),
            ));
            noisy_rows.push((
                budget.to_string(),
                series.iter().map(|&s| find(&noisy_results, s)).collect(),
            ));
        }
        print_series_block(
            &format!("Figure 10 — correlation = {name}: latency (s) with exact MCVs"),
            "buffer_pages",
            &series,
            &exact_rows,
        );
        print_series_block(
            &format!(
                "Figure 10 — correlation = {name}: latency (s) with noisy MCVs (sigma = {sigma})"
            ),
            "buffer_pages",
            &series,
            &noisy_rows,
        );
    }
}
